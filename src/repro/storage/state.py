"""Checkpointing the maintained semi-external state.

A maintenance service holding ``core``/``cnt`` for a billion-node graph
cannot afford to recompute them after a restart (the seeding run is the
expensive part).  A checkpoint stores both arrays plus a fingerprint of
the graph they describe; :func:`load_checkpoint` refuses to resume
against a graph whose shape changed while the service was down.

This codec lives in :mod:`repro.storage` (not under ``repro.core``)
because it opens files: ``repro/core/`` is inside the charged-I/O
boundary enforced by ``repro lint`` (rule IO001), where every byte read
or written must pass through the block device so ``IOStats`` stays an
honest reproduction of the paper's I/O model.  Checkpoint bytes are
service bookkeeping, deliberately *outside* the model, so the codec
sits with the rest of the uncharged persistence code.
``repro.core.maintenance.checkpoint`` remains as a compatibility alias.

Format: a 32-byte header (magic, version, n, arc count) followed by the
two ``int32`` arrays back to back, then (format v2) a trailing CRC32 of
the payload -- a flipped bit anywhere in the arrays is detected instead
of silently resuming from wrong coreness.  v1 files (no trailing CRC)
are still readable.
"""

from __future__ import annotations

import struct
import zlib
from array import array

from repro.errors import CorruptStorageError

_MAGIC = b"RPRSTAT1"
_HEADER = struct.Struct("<8sIQQ4x")
_CRC = struct.Struct("<I")
#: v1: header + arrays.  v2: header + arrays + CRC32(arrays).
_VERSION = 2
_MIN_VERSION = 1


def save_checkpoint(path, graph, cores, cnt):
    """Persist ``core``/``cnt`` for ``graph`` to ``path``."""
    n = graph.num_nodes
    if len(cores) != n or len(cnt) != n:
        raise ValueError(
            "arrays (%d/%d entries) do not match n=%d"
            % (len(cores), len(cnt), n)
        )
    core_arr = array("i", cores)
    cnt_arr = array("i", cnt)
    payload = core_arr.tobytes() + cnt_arr.tobytes()
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, n, graph.num_arcs))
        handle.write(payload)
        handle.write(_CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF))


def load_checkpoint(path, graph=None):
    """Load ``(cores, cnt)``; verifies the fingerprint when given a graph.

    Raises :class:`CorruptStorageError` on format problems, a payload
    checksum mismatch (v2 files), or when the graph's node/arc counts
    disagree with the checkpoint.  Errors carry the checkpoint ``path``
    (and the damage ``offset`` where known) as structured attributes.
    """
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise CorruptStorageError(
                "checkpoint %s: header truncated" % path,
                path=path, offset=0)
        magic, version, n, arcs = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise CorruptStorageError(
                "checkpoint %s: bad checkpoint magic %r" % (path, magic),
                path=path, offset=0)
        if not _MIN_VERSION <= version <= _VERSION:
            raise CorruptStorageError(
                "checkpoint %s: unsupported checkpoint version %d"
                % (path, version),
                path=path, offset=0)
        rest = handle.read()
    expected = 2 * 4 * n
    if version >= 2:
        if len(rest) != expected + _CRC.size:
            raise CorruptStorageError(
                "checkpoint %s: payload is %d bytes, expected %d"
                % (path, len(rest), expected + _CRC.size),
                path=path, offset=_HEADER.size + len(rest))
        payload, crc_bytes = rest[:expected], rest[expected:]
        if _CRC.unpack(crc_bytes)[0] != zlib.crc32(payload) & 0xFFFFFFFF:
            raise CorruptStorageError(
                "checkpoint %s: payload fails its checksum "
                "(corrupted state arrays)" % path,
                path=path, offset=_HEADER.size)
    else:
        payload = rest
        if len(payload) != expected:
            raise CorruptStorageError(
                "checkpoint %s: payload is %d bytes, expected %d"
                % (path, len(payload), expected),
                path=path, offset=_HEADER.size + len(payload))
    if graph is not None:
        if graph.num_nodes != n:
            raise CorruptStorageError(
                "checkpoint %s: checkpoint is for n=%d, graph has n=%d"
                % (path, n, graph.num_nodes),
                path=path)
        if graph.num_arcs != arcs:
            raise CorruptStorageError(
                "checkpoint %s: checkpoint is for %d arcs, graph has %d "
                "(graph changed since the checkpoint)"
                % (path, arcs, graph.num_arcs),
                path=path)
    cores = array("i")
    cores.frombytes(payload[:4 * n])
    cnt = array("i")
    cnt.frombytes(payload[4 * n:])
    return cores, cnt
