"""In-memory buffer of pending edge insertions and deletions.

Section V of the paper: *"we allow a memory buffer to maintain the latest
inserted / deleted edges.  We also index the edges in the memory buffer.
When the buffer is full, we update the graph on disk and clear the
buffer."*

:class:`EdgeBuffer` stores the *net* difference against the base storage.
Inserting a previously deleted edge (or vice versa) cancels out, so the
buffer never records contradictory state for an edge.
"""

from __future__ import annotations


class EdgeBuffer:
    """Net overlay of edge insertions/deletions keyed by endpoint."""

    def __init__(self, capacity=None):
        """``capacity`` bounds the number of pending undirected edges;
        ``None`` means unbounded."""
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._inserted = {}
        self._deleted = {}
        self._pending = 0

    # -- recording ----------------------------------------------------------
    def record_insert(self, u, v):
        """Record insertion of (u, v); cancels a pending deletion."""
        if self._pair_in(self._deleted, u, v):
            self._pair_discard(self._deleted, u, v)
            self._pending -= 1
        else:
            self._pair_add(self._inserted, u, v)
            self._pending += 1

    def record_delete(self, u, v):
        """Record deletion of (u, v); cancels a pending insertion."""
        if self._pair_in(self._inserted, u, v):
            self._pair_discard(self._inserted, u, v)
            self._pending -= 1
        else:
            self._pair_add(self._deleted, u, v)
            self._pending += 1

    # -- queries ------------------------------------------------------------
    def is_inserted(self, u, v):
        """True when (u, v) is a pending insertion."""
        return self._pair_in(self._inserted, u, v)

    def is_deleted(self, u, v):
        """True when (u, v) is a pending deletion."""
        return self._pair_in(self._deleted, u, v)

    def touches(self, v):
        """True when node ``v`` has any pending operation."""
        return v in self._inserted or v in self._deleted

    def degree_delta(self, v):
        """Signed change to ``deg(v)`` from pending operations."""
        return (len(self._inserted.get(v, ()))
                - len(self._deleted.get(v, ())))

    def adjust(self, v, base_neighbors):
        """Apply pending operations of node ``v`` to its base adjacency.

        Returns a sorted list of neighbour ids.  When ``v`` has no pending
        operations the base sequence is returned unchanged (no copy).
        """
        inserted = self._inserted.get(v)
        deleted = self._deleted.get(v)
        if not inserted and not deleted:
            return base_neighbors
        merged = set(base_neighbors)
        if deleted:
            merged -= deleted
        if inserted:
            merged |= inserted
        return sorted(merged)

    @property
    def is_full(self):
        """True when the buffer reached its capacity."""
        return self.capacity is not None and self._pending >= self.capacity

    def __len__(self):
        """Number of pending undirected edge operations."""
        return self._pending

    def clear(self):
        """Drop every pending operation."""
        self._inserted.clear()
        self._deleted.clear()
        self._pending = 0

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _pair_add(table, u, v):
        table.setdefault(u, set()).add(v)
        table.setdefault(v, set()).add(u)

    @staticmethod
    def _pair_discard(table, u, v):
        for a, b in ((u, v), (v, u)):
            nbrs = table.get(a)
            if nbrs is not None:
                nbrs.discard(b)
                if not nbrs:
                    del table[a]

    @staticmethod
    def _pair_in(table, u, v):
        return v in table.get(u, ())
