"""Dynamic graph: on-disk storage plus an in-memory edge buffer.

:class:`DynamicGraph` exposes the same read protocol as
:class:`~repro.storage.GraphStorage` (``num_nodes``, ``neighbors``,
``read_degrees``, ``iter_adjacency``, ``io_stats``) while supporting
``insert_edge`` / ``delete_edge``.  Updates accumulate in an
:class:`~repro.storage.buffer.EdgeBuffer`; when the buffer reaches its
capacity the graph is *compacted*: the merged adjacency is streamed to a
fresh pair of tables (read + write I/Os are counted), exactly the
maintenance strategy described in Section V of the paper.
"""

from __future__ import annotations

import itertools

from repro.errors import EdgeExistsError, EdgeNotFoundError, GraphError
from repro.storage.buffer import EdgeBuffer
from repro.storage.graphstore import GraphStorage

DEFAULT_BUFFER_CAPACITY = 65536


class DynamicGraph:
    """A mutable graph backed by block storage and an edge buffer."""

    def __init__(self, storage, *, buffer_capacity=DEFAULT_BUFFER_CAPACITY,
                 path_factory=None, auto_compact=True):
        """Wrap ``storage``.

        Parameters
        ----------
        buffer_capacity:
            Pending undirected edge operations kept in memory before a
            compaction rewrites the tables (``None`` disables compaction).
        path_factory:
            Callable returning a fresh path prefix for each compaction when
            the graph lives in files; ``None`` compacts to memory-backed
            tables.
        auto_compact:
            When False, :meth:`compact` must be called explicitly.
        """
        self._storage = storage
        self._buffer = EdgeBuffer(buffer_capacity)
        self._path_factory = path_factory
        self._auto_compact = auto_compact
        self._generation = itertools.count(1)
        self._arc_delta = 0

    # -- read protocol -------------------------------------------------------
    @property
    def num_nodes(self):
        """Number of nodes."""
        return self._storage.num_nodes

    @property
    def num_arcs(self):
        """Adjacency entries including pending operations."""
        return self._storage.num_arcs + self._arc_delta

    @property
    def num_edges(self):
        """Undirected edges including pending operations."""
        return self.num_arcs // 2

    @property
    def io_stats(self):
        """Combined I/O counters of the base storage."""
        return self._storage.io_stats

    @property
    def block_size(self):
        """Block size of the base storage."""
        return self._storage.block_size

    @property
    def storage(self):
        """The current base storage (replaced by compaction)."""
        return self._storage

    @property
    def pending_operations(self):
        """Number of buffered undirected edge operations."""
        return len(self._buffer)

    def degree(self, v):
        """Degree of ``v`` including pending operations."""
        return self._storage.degree(v) + self._buffer.degree_delta(v)

    def neighbors(self, v):
        """Adjacency of ``v`` with pending operations applied."""
        base = self._storage.neighbors(v)
        return self._buffer.adjust(v, base)

    def read_degrees(self):
        """All degrees with pending operations applied."""
        degrees = self._storage.read_degrees()
        for v in range(len(degrees)):
            if self._buffer.touches(v):
                degrees[v] += self._buffer.degree_delta(v)
        return degrees

    def iter_adjacency(self, start=0, stop=None, **kwargs):
        """Sequential scan with pending operations applied per node."""
        for v, nbrs in self._storage.iter_adjacency(start, stop, **kwargs):
            yield v, self._buffer.adjust(v, nbrs)

    def edges(self):
        """Yield each undirected edge once with pending operations applied."""
        for v, nbrs in self.iter_adjacency():
            for u in nbrs:
                if v < u:
                    yield (v, int(u))

    def has_edge(self, u, v):
        """Edge membership (reads the base adjacency of ``u``)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            return False
        if self._buffer.is_inserted(u, v):
            return True
        if self._buffer.is_deleted(u, v):
            return False
        return v in set(self._storage.neighbors(u))

    # -- mutation --------------------------------------------------------------
    def insert_edge(self, u, v, *, validate=True):
        """Insert undirected edge (u, v) into the buffer.

        With ``validate`` (default) the base adjacency is consulted so a
        duplicate insertion raises :class:`EdgeExistsError`; benchmarks may
        disable the check to avoid charging the extra read.
        """
        self._check_edge_nodes(u, v)
        if validate and self.has_edge(u, v):
            raise EdgeExistsError("edge (%d, %d) already present" % (u, v))
        self._buffer.record_insert(u, v)
        self._arc_delta += 2
        self._maybe_compact()

    def delete_edge(self, u, v, *, validate=True):
        """Delete undirected edge (u, v) via the buffer."""
        self._check_edge_nodes(u, v)
        if validate and not self.has_edge(u, v):
            raise EdgeNotFoundError("edge (%d, %d) not present" % (u, v))
        self._buffer.record_delete(u, v)
        self._arc_delta -= 2
        self._maybe_compact()

    def compact(self):
        """Merge the buffer into fresh tables and clear it.

        The merged adjacency is streamed from the old tables (read I/Os)
        into new ones (write I/Os) that share the same
        :class:`~repro.storage.blockio.IOStats`, so accounting stays
        continuous across generations.
        """
        if not len(self._buffer):
            return
        path = None
        if self._path_factory is not None:
            path = self._path_factory(next(self._generation))
        merged = (self._buffer.adjust(v, nbrs)
                  for v, nbrs in self._storage.iter_adjacency())
        new_storage = GraphStorage.from_adjacency(
            merged, self.num_nodes, path=path,
            block_size=self._storage.block_size,
            stats=self._storage.io_stats,
        )
        old = self._storage
        self._storage = new_storage
        self._buffer.clear()
        self._arc_delta = 0
        old.close()

    # -- internals ---------------------------------------------------------------
    def _maybe_compact(self):
        if self._auto_compact and self._buffer.is_full:
            self.compact()

    def _check_edge_nodes(self, u, v):
        n = self.num_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError("edge (%d, %d) out of range for n=%d" % (u, v, n))
        if u == v:
            raise GraphError("self loop (%d, %d) not allowed" % (u, v))

    def close(self):
        """Close the current base storage."""
        self._storage.close()

    def __repr__(self):
        return "DynamicGraph(n=%d, m=%d, pending=%d)" % (
            self.num_nodes, self.num_edges, self.pending_operations
        )
