"""Binary layout of the on-disk graph tables.

The paper stores a graph as two tables (Section II, "Graph Storage"):

* a *node table* holding, for each node ``v`` in id order, the offset of
  ``nbr(v)`` in the edge table together with ``deg(v)``; and
* an *edge table* holding ``nbr(v_1), nbr(v_2), ...`` consecutively as
  adjacency lists.

This module defines the byte-level format shared by every backend:

``node table``
    64-byte header, then one 12-byte entry per node:
    ``offset`` (u64, *in edge entries*, not bytes) + ``degree`` (u32).

``edge table``
    64-byte header, then one u32 neighbour id per adjacency entry.

Headers are validated on open so that truncated or foreign files fail fast
with :class:`~repro.errors.CorruptStorageError`.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptStorageError

MAGIC = b"RPRCORE1"
FORMAT_VERSION = 1

TABLE_NODE = 1
TABLE_EDGE = 2
#: Per-shard boundary table (see :mod:`repro.storage.shards`): the
#: sorted global ids behind a shard's halo rows, one u32 per entry.
TABLE_BOUNDARY = 3

HEADER_SIZE = 64
# magic (8s), version (u32), table type (u32), entry count (u64),
# companion count (u64: m for the node table, n for the edge table),
# 32 reserved bytes.
_HEADER_STRUCT = struct.Struct("<8sIIQQ32x")

NODE_ENTRY_SIZE = 12
_NODE_ENTRY_STRUCT = struct.Struct("<QI")

EDGE_ENTRY_SIZE = 4
EDGE_TYPECODE = "I"
MAX_NODE_ID = 2 ** 32 - 1


def pack_header(table_type, entry_count, companion_count):
    """Serialize a 64-byte table header."""
    return _HEADER_STRUCT.pack(
        MAGIC, FORMAT_VERSION, table_type, entry_count, companion_count
    )


def unpack_header(data, expected_type):
    """Parse and validate a header, returning (entry_count, companion_count).

    Raises :class:`CorruptStorageError` when the magic, version or table
    type does not match.
    """
    if len(data) < HEADER_SIZE:
        raise CorruptStorageError(
            "truncated header: %d bytes, expected %d" % (len(data), HEADER_SIZE)
        )
    magic, version, table_type, entries, companion = _HEADER_STRUCT.unpack(
        data[:HEADER_SIZE]
    )
    if magic != MAGIC:
        raise CorruptStorageError("bad magic %r" % (magic,))
    if version != FORMAT_VERSION:
        raise CorruptStorageError(
            "unsupported format version %d (supported: %d)"
            % (version, FORMAT_VERSION)
        )
    if table_type != expected_type:
        raise CorruptStorageError(
            "wrong table type %d, expected %d" % (table_type, expected_type)
        )
    return entries, companion


def pack_node_entry(offset_entries, degree):
    """Serialize one node-table entry."""
    return _NODE_ENTRY_STRUCT.pack(offset_entries, degree)


def unpack_node_entry(data, position=0):
    """Parse one node-table entry, returning (offset_entries, degree)."""
    return _NODE_ENTRY_STRUCT.unpack_from(data, position)


def node_entry_position(node):
    """Byte offset of a node's entry within the node table."""
    return HEADER_SIZE + node * NODE_ENTRY_SIZE


def edge_entry_position(entry_index):
    """Byte offset of an adjacency entry within the edge table."""
    return HEADER_SIZE + entry_index * EDGE_ENTRY_SIZE


def node_table_size(num_nodes):
    """Total byte size of a node table for ``num_nodes`` nodes."""
    return HEADER_SIZE + num_nodes * NODE_ENTRY_SIZE


def edge_table_size(num_entries):
    """Total byte size of an edge table for ``num_entries`` entries."""
    return HEADER_SIZE + num_entries * EDGE_ENTRY_SIZE
