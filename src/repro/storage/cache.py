"""An optional LRU buffer pool over a block device.

The paper's algorithms deliberately need no buffer pool -- SemiCore scans
sequentially and SemiCore* makes every read useful -- which is advantage
A3 ("simple in-memory structure and data access").  To *measure* that
claim, :class:`BufferPool` adds a classic page cache so benchmarks can
show how little a cache helps the semi-external access patterns (see
``benchmarks/bench_ablation_buffer_pool.py``).

The pool shares the wrapped device's :class:`IOStats`; a pooled hit costs
nothing, a miss costs one read I/O, exactly like the device's built-in
one-block cache but with configurable capacity.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import StorageError
from repro.storage.blockio import BlockDevice


class BufferPool(BlockDevice):
    """LRU cache of ``capacity_blocks`` blocks in front of a device."""

    def __init__(self, device, capacity_blocks=64):
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be positive")
        super().__init__(block_size=device.block_size, stats=device.stats)
        self._device = device
        self._capacity = capacity_blocks
        self._pool = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- BlockDevice backend hooks (used by write paths) ------------------
    def _read_raw(self, offset, size):
        return self._device._read_raw(offset, size)

    def _write_raw(self, offset, data):
        self._device._write_raw(offset, data)

    def _size_raw(self):
        return self._device._size_raw()

    # -- pooled reads ---------------------------------------------------------
    def read_at(self, offset, size):
        """Read through the pool: one read I/O per missing block."""
        self._check_open()
        if offset < 0 or size < 0:
            raise StorageError(
                "invalid read range offset=%d size=%d" % (offset, size)
            )
        if size == 0:
            return b""
        end = offset + size
        if end > self._size_raw():
            raise StorageError(
                "read past end of device: [%d, %d) but size is %d"
                % (offset, end, self._size_raw())
            )
        block_size = self.block_size
        first = offset // block_size
        last = (end - 1) // block_size
        pieces = []
        for index in range(first, last + 1):
            pieces.append(self._block(index))
        data = b"".join(pieces)
        lo = offset - first * block_size
        return data[lo:lo + size]

    def write_at(self, offset, data):
        """Write through, updating or evicting overlapping pooled blocks."""
        self._check_open()
        if offset < 0:
            raise StorageError("invalid write offset %d" % offset)
        if not data:
            return
        end = offset + len(data)
        block_size = self.block_size
        first = offset // block_size
        last = (end - 1) // block_size
        for index in range(first, last + 1):
            self._pool.pop(index, None)
        self.stats.write_ios += last - first + 1
        self.stats.bytes_written += len(data)
        self._write_raw(offset, bytes(data))

    # -- introspection ----------------------------------------------------------
    @property
    def capacity(self):
        """Maximum number of resident blocks."""
        return self._capacity

    @property
    def resident_blocks(self):
        """Blocks currently held by the pool."""
        return len(self._pool)

    @property
    def hit_rate(self):
        """Fraction of block lookups served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def drop_cache(self):
        """Evict every pooled block."""
        super().drop_cache()
        self._pool.clear()

    def close(self):
        """Clear the pool and close this wrapper."""
        self._pool.clear()
        super().close()

    # -- internals -------------------------------------------------------------
    def _block(self, index):
        cached = self._pool.get(index)
        if cached is not None:
            self._pool.move_to_end(index)
            self.hits += 1
            return cached
        self.misses += 1
        start = index * self.block_size
        stop = min(start + self.block_size, self._size_raw())
        data = self._read_raw(start, stop - start)
        self.stats.read_ios += 1
        self.stats.bytes_read += len(data)
        self._pool[index] = data
        while len(self._pool) > self._capacity:
            self._pool.popitem(last=False)
        return data


def buffered_storage(storage, capacity_blocks=64):
    """Wrap a :class:`~repro.storage.GraphStorage` with buffer pools.

    Returns a new storage object sharing the same I/O counters whose node
    and edge tables are read through independent LRU pools.  The original
    storage must stay open for the wrapper's lifetime.
    """
    from repro.storage.graphstore import GraphStorage

    return GraphStorage(
        BufferPool(storage._nodes, capacity_blocks),
        BufferPool(storage._edges, capacity_blocks),
        storage.num_nodes,
        storage.num_arcs,
    )
