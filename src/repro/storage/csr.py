"""CSR adjacency snapshots for the vectorized engines.

:class:`CSRGraph` is an immutable compressed-sparse-row view of a graph:
``indptr`` (``n + 1`` int64 offsets) and ``indices`` (``m`` uint32
neighbour ids, the on-disk edge-entry type).  It is the batch substrate
the NumPy engine computes on -- one contiguous buffer instead of per-node
Python objects.

Snapshots are buildable from any object with the storage read protocol:

* :meth:`CSRGraph.from_storage` replays the block-wise read plan of
  :meth:`~repro.storage.graphstore.GraphStorage.iter_adjacency` against
  the raw node/edge devices, concatenating the edge payloads.  Because
  it issues exactly the reads that ``iter_adjacency`` issues,
  materializing a snapshot charges the shared
  :class:`~repro.storage.blockio.IOStats` precisely one sequential scan
  -- the same figure a reference-engine pass pays.  This is what lets
  the vectorized engines report I/O counts identical to the pure-Python
  paths.
* :meth:`CSRGraph.from_graph` falls back to ``iter_adjacency`` for
  graphs without exposed block devices
  (:class:`~repro.storage.MemoryGraph`, dynamic overlays); the per-node
  reads still go through whatever I/O accounting the source graph has.

NumPy is imported lazily so that merely importing :mod:`repro.storage`
never requires it; :func:`require_numpy` raises a uniform
:class:`~repro.errors.ReproError` when the dependency is missing.
"""

from __future__ import annotations

from array import array

from repro.errors import ReproError
from repro.storage import layout
from repro.storage.graphstore import SCAN_CHUNK_BYTES

try:  # soft dependency: the reference engine never needs numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def require_numpy():
    """Return the numpy module or raise a uniform :class:`ReproError`."""
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise ReproError(
            "this feature requires numpy, which is not installed "
            "(pip install numpy, or stay on engine='python')"
        )
    return _np


class CSRGraph:
    """An immutable CSR adjacency snapshot of an undirected graph."""

    __slots__ = ("indptr", "indices", "num_nodes", "num_arcs")

    def __init__(self, indptr, indices):
        np = require_numpy()
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.uint32)
        if len(self.indptr) < 1:
            raise ReproError("indptr must have at least one entry")
        self.num_nodes = len(self.indptr) - 1
        self.num_arcs = int(self.indptr[-1])
        if self.num_arcs != len(self.indices):
            raise ReproError(
                "indptr ends at %d but indices has %d entries"
                % (self.num_arcs, len(self.indices))
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_storage(cls, storage, *, chunk_bytes=None):
        """Materialize block-wise from a GraphStorage-shaped graph.

        Replays the read plan of ``iter_adjacency`` -- node-table batches
        of ``chunk_bytes``, edge-table spans grouped greedily up to
        ``chunk_bytes`` (a group's first non-empty adjacency is accepted
        regardless of size) -- directly against ``node_device`` /
        ``edge_device``, computing the plan with numpy so a snapshot
        build does no per-node Python work at all.  Issuing exactly the
        reads of one sequential scan makes the snapshot's I/O accounting
        identical to one reference-engine pass; the test suite asserts
        read-for-read I/O equality with ``iter_adjacency``.
        """
        np = require_numpy()
        if chunk_bytes is None:
            chunk_bytes = SCAN_CHUNK_BYTES
        nodes_dev = storage.node_device
        edges_dev = storage.edge_device
        n = storage.num_nodes
        entry_dtype = np.dtype([("offset", "<u8"), ("degree", "<u4")])
        entries_per_chunk = max(1, chunk_bytes // layout.NODE_ENTRY_SIZE)
        degree_parts = []
        payload = []
        v = 0
        while v < n:
            batch = min(n - v, entries_per_chunk)
            node_data = nodes_dev.read_at(
                layout.node_entry_position(v),
                batch * layout.NODE_ENTRY_SIZE,
            )
            entries = np.frombuffer(node_data, dtype=entry_dtype)
            degrees = entries["degree"].astype(np.int64)
            degree_parts.append(degrees)
            sizes = degrees * layout.EDGE_ENTRY_SIZE
            bounds = np.zeros(batch + 1, dtype=np.int64)
            np.cumsum(sizes, out=bounds[1:])
            nonzero = np.flatnonzero(sizes)
            i = 0
            while i < batch:
                j = int(np.searchsorted(bounds, bounds[i] + chunk_bytes,
                                        side="right")) - 1
                # The group's first non-empty adjacency is always taken,
                # even when it alone exceeds the chunk budget.
                first_nonzero = int(np.searchsorted(nonzero, i))
                if first_nonzero < len(nonzero):
                    j = max(j, int(nonzero[first_nonzero]) + 1)
                j = min(j, batch)
                span = int(bounds[j] - bounds[i])
                if span:
                    payload.append(edges_dev.read_at(
                        layout.edge_entry_position(int(entries["offset"][i])),
                        span,
                    ))
                i = j
            v += batch
        if degree_parts:
            all_degrees = np.concatenate(degree_parts)
        else:
            all_degrees = np.zeros(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(all_degrees, out=indptr[1:])
        indices = np.frombuffer(b"".join(payload), dtype=np.uint32)
        return cls(indptr, indices)

    @classmethod
    def from_graph(cls, graph, *, chunk_bytes=None):
        """Build a snapshot from any graph with the read protocol.

        Prefers the block-wise fast path when the graph exposes its
        block devices and otherwise falls back to one ``iter_adjacency``
        pass (which still charges whatever I/O accounting the source
        graph has).
        """
        np = require_numpy()
        if hasattr(graph, "node_device") and hasattr(graph, "edge_device"):
            return cls.from_storage(graph, chunk_bytes=chunk_bytes)
        degrees = array("q")
        payload = []
        for _, nbrs in graph.iter_adjacency():
            degrees.append(len(nbrs))
            if len(nbrs):
                if not isinstance(nbrs, array) or \
                        nbrs.typecode != layout.EDGE_TYPECODE:
                    nbrs = array(layout.EDGE_TYPECODE, nbrs)
                payload.append(nbrs.tobytes())
        indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
        if len(degrees):
            np.cumsum(np.frombuffer(degrees, dtype=np.int64),
                      out=indptr[1:])
        indices = np.frombuffer(b"".join(payload), dtype=np.uint32)
        return cls(indptr, indices)

    @classmethod
    def from_rows(cls, rows, num_nodes, adjacency):
        """Build a snapshot holding adjacency for ``rows`` only.

        ``adjacency`` maps each listed row to its neighbour sequence;
        every other row is empty.  Rows are visited in ascending id order
        (the payload must be laid out in id order).  The NumPy SemiCore*
        engine uses this to snapshot exactly the nodes the reference
        algorithm reads, in exactly the order it reads them.
        """
        np = require_numpy()
        degrees = np.zeros(num_nodes, dtype=np.int64)
        payload = []
        for v in sorted(int(r) for r in rows):
            nbrs = adjacency(v)
            degrees[v] = len(nbrs)
            if len(nbrs):
                if not isinstance(nbrs, array) or \
                        nbrs.typecode != layout.EDGE_TYPECODE:
                    nbrs = array(layout.EDGE_TYPECODE, nbrs)
                payload.append(nbrs.tobytes())
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.frombuffer(b"".join(payload), dtype=np.uint32)
        return cls(indptr, indices)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self):
        """Number of undirected edges (half the adjacency entries)."""
        return self.num_arcs // 2

    def degrees(self):
        """Per-node degrees as an int64 numpy array."""
        np = require_numpy()
        return np.diff(self.indptr)

    def neighbors(self, v):
        """Adjacency slice of node ``v`` (a uint32 numpy view)."""
        if not 0 <= v < self.num_nodes:
            raise ReproError(
                "node %d out of range [0, %d)" % (v, self.num_nodes)
            )
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def model_memory_bytes(self):
        """Bytes of the snapshot under the paper's memory accounting."""
        return 8 * (self.num_nodes + 1) + \
            layout.EDGE_ENTRY_SIZE * self.num_arcs

    def __repr__(self):
        return "CSRGraph(n=%d, m=%d)" % (self.num_nodes, self.num_edges)
