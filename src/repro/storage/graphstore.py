"""On-disk graph storage: node table + edge table behind block devices.

:class:`GraphStorage` is the substrate every semi-external algorithm runs
on.  It mirrors the paper's storage layout (Section II): adjacency lists
live consecutively in an *edge table* while per-node ``(offset, degree)``
entries live in a *node table*.  All access goes through counting
:class:`~repro.storage.blockio.BlockDevice` objects, so algorithms can
report exact read/write I/O figures.

Both tables share one :class:`~repro.storage.blockio.IOStats` instance;
``storage.io_stats`` therefore reports the combined I/O of the graph.
"""

from __future__ import annotations

import os
from array import array

from repro.errors import GraphError, StorageError
from repro.storage import layout
from repro.storage.blockio import (
    DEFAULT_BLOCK_SIZE,
    FileBlockDevice,
    IOStats,
    MemoryBlockDevice,
)
from repro.storage.memgraph import normalize_edges

NODE_SUFFIX = ".nodes"
EDGE_SUFFIX = ".edges"

#: Bytes per sequential-scan chunk (public: the CSR snapshot builder
#: mirrors the scan's read plan and must use the same default).
SCAN_CHUNK_BYTES = 1 << 18

_DEFAULT_CHUNK_BYTES = SCAN_CHUNK_BYTES


class GraphStorage:
    """An undirected graph stored in block-addressed node/edge tables."""

    def __init__(self, node_device, edge_device, num_nodes, num_arcs):
        self._nodes = node_device
        self._edges = edge_device
        self.num_nodes = num_nodes
        self.num_arcs = num_arcs

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency, num_nodes, *, path=None,
                       block_size=DEFAULT_BLOCK_SIZE, stats=None):
        """Build storage from an iterable of per-node neighbour lists.

        ``adjacency`` must yield exactly ``num_nodes`` sequences, one per
        node in id order.  When ``path`` is None the tables live in memory;
        otherwise they are written to ``path + '.nodes'`` / ``'.edges'``.
        """
        stats = stats if stats is not None else IOStats()
        node_dev, edge_dev = _create_devices(path, block_size, stats)

        node_chunk = bytearray()
        edge_chunk = bytearray()
        node_pos = layout.HEADER_SIZE
        edge_pos = layout.HEADER_SIZE
        offset_entries = 0
        count = 0
        for nbrs in adjacency:
            nbr_array = array(layout.EDGE_TYPECODE, nbrs)
            node_chunk += layout.pack_node_entry(offset_entries, len(nbr_array))
            edge_chunk += nbr_array.tobytes()
            offset_entries += len(nbr_array)
            count += 1
            if len(node_chunk) >= _DEFAULT_CHUNK_BYTES:
                node_dev.write_at(node_pos, bytes(node_chunk))
                node_pos += len(node_chunk)
                node_chunk.clear()
            if len(edge_chunk) >= _DEFAULT_CHUNK_BYTES:
                edge_dev.write_at(edge_pos, bytes(edge_chunk))
                edge_pos += len(edge_chunk)
                edge_chunk.clear()
        if count != num_nodes:
            raise GraphError(
                "adjacency yielded %d node lists, expected %d" % (count, num_nodes)
            )
        if node_chunk:
            node_dev.write_at(node_pos, bytes(node_chunk))
        if edge_chunk:
            edge_dev.write_at(edge_pos, bytes(edge_chunk))
        num_arcs = offset_entries
        node_dev.write_at(0, layout.pack_header(layout.TABLE_NODE,
                                                num_nodes, num_arcs))
        edge_dev.write_at(0, layout.pack_header(layout.TABLE_EDGE,
                                                num_arcs, num_nodes))
        return cls(node_dev, edge_dev, num_nodes, num_arcs)

    @classmethod
    def from_edges(cls, edges, num_nodes=None, *, path=None,
                   block_size=DEFAULT_BLOCK_SIZE, stats=None):
        """Build storage from an iterable of undirected edges.

        Edges are normalized (self loops dropped, duplicates removed) and
        each edge is stored in both endpoints' adjacency lists, as in the
        paper's datasets.  Convenient for graphs that fit in memory during
        construction; use :mod:`repro.storage.builder` for streaming builds.
        """
        edge_list, n = normalize_edges(edges, num_nodes)
        adjacency = [[] for _ in range(n)]
        for u, v in edge_list:
            adjacency[u].append(v)
            adjacency[v].append(u)
        for nbrs in adjacency:
            nbrs.sort()
        return cls.from_adjacency(adjacency, n, path=path,
                                  block_size=block_size, stats=stats)

    @classmethod
    def from_memgraph(cls, graph, *, path=None,
                      block_size=DEFAULT_BLOCK_SIZE, stats=None):
        """Build storage from a :class:`~repro.storage.MemoryGraph`."""
        adjacency = (graph.neighbors(v) for v in range(graph.num_nodes))
        return cls.from_adjacency(adjacency, graph.num_nodes, path=path,
                                  block_size=block_size, stats=stats)

    @classmethod
    def open(cls, path, *, block_size=DEFAULT_BLOCK_SIZE, stats=None,
             writable=False):
        """Open previously written tables at ``path`` (+ suffixes)."""
        stats = stats if stats is not None else IOStats()
        mode = "r+" if writable else "r"
        node_dev = FileBlockDevice(os.fspath(path) + NODE_SUFFIX, mode,
                                   block_size=block_size, stats=stats)
        edge_dev = FileBlockDevice(os.fspath(path) + EDGE_SUFFIX, mode,
                                   block_size=block_size, stats=stats)
        num_nodes, num_arcs = layout.unpack_header(
            node_dev.read_at(0, layout.HEADER_SIZE), layout.TABLE_NODE
        )
        arcs_check, nodes_check = layout.unpack_header(
            edge_dev.read_at(0, layout.HEADER_SIZE), layout.TABLE_EDGE
        )
        if arcs_check != num_arcs or nodes_check != num_nodes:
            raise StorageError(
                "node/edge tables disagree: (%d, %d) vs (%d, %d)"
                % (num_nodes, num_arcs, nodes_check, arcs_check)
            )
        expected = layout.edge_table_size(num_arcs)
        if edge_dev.size < expected:
            raise StorageError(
                "edge table truncated: %d bytes, expected %d"
                % (edge_dev.size, expected)
            )
        return cls(node_dev, edge_dev, num_nodes, num_arcs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self):
        """Number of undirected edges (half the adjacency entries)."""
        return self.num_arcs // 2

    @property
    def path(self):
        """Path prefix of file-backed tables, or None for in-memory ones.

        Services record this in their manifests so a checkpointed data
        directory can reopen its seed graph without the caller passing
        the storage again.
        """
        node_path = getattr(self._nodes, "path", None)
        if node_path is not None and node_path.endswith(NODE_SUFFIX):
            return node_path[: -len(NODE_SUFFIX)]
        return None

    @property
    def io_stats(self):
        """Combined I/O counters of the node and edge tables."""
        return self._nodes.stats

    @property
    def block_size(self):
        """Block size of the backing devices."""
        return self._nodes.block_size

    @property
    def node_device(self):
        """The node table's block device (read access for engines)."""
        return self._nodes

    @property
    def edge_device(self):
        """The edge table's block device (read access for engines)."""
        return self._edges

    def node_entry(self, v):
        """Read ``(offset_entries, degree)`` for node ``v`` from disk."""
        self._check_node(v)
        data = self._nodes.read_at(layout.node_entry_position(v),
                                   layout.NODE_ENTRY_SIZE)
        return layout.unpack_node_entry(data)

    def degree(self, v):
        """Degree of node ``v`` (reads the node table)."""
        return self.node_entry(v)[1]

    def neighbors(self, v):
        """Adjacency list of node ``v`` as an array of node ids."""
        offset, degree = self.node_entry(v)
        if degree == 0:
            return array(layout.EDGE_TYPECODE)
        data = self._edges.read_at(layout.edge_entry_position(offset),
                                   degree * layout.EDGE_ENTRY_SIZE)
        return array(layout.EDGE_TYPECODE, data)

    def read_degrees(self):
        """All degrees via one sequential scan of the node table."""
        degrees = array("i", bytes(4 * self.num_nodes))
        position = layout.HEADER_SIZE
        remaining = self.num_nodes
        v = 0
        entries_per_chunk = max(1, _DEFAULT_CHUNK_BYTES // layout.NODE_ENTRY_SIZE)
        while remaining:
            batch = min(remaining, entries_per_chunk)
            data = self._nodes.read_at(position, batch * layout.NODE_ENTRY_SIZE)
            for i in range(batch):
                degrees[v] = layout.unpack_node_entry(
                    data, i * layout.NODE_ENTRY_SIZE)[1]
                v += 1
            position += batch * layout.NODE_ENTRY_SIZE
            remaining -= batch
        return degrees

    def iter_adjacency_chunks(self, start=0, stop=None,
                              chunk_bytes=_DEFAULT_CHUNK_BYTES):
        """Yield ``(first_node, degrees, edge_data)`` raw scan groups.

        This is the block-level substrate of :meth:`iter_adjacency`: the
        node table is read in large sequential batches and consecutive
        nodes whose adjacency fits in one ``chunk_bytes`` read are grouped
        into a single edge-table read.  ``degrees`` is the per-node degree
        list of the group and ``edge_data`` the group's concatenated
        adjacency bytes.  Consumers that want the raw payload (e.g. the
        CSR snapshot builder) use this directly and are guaranteed to
        issue exactly the same device reads as :meth:`iter_adjacency`.
        """
        if stop is None:
            stop = self.num_nodes
        if not 0 <= start <= stop <= self.num_nodes:
            raise GraphError(
                "bad node range [%d, %d) for n=%d" % (start, stop, self.num_nodes)
            )
        entries_per_chunk = max(1, chunk_bytes // layout.NODE_ENTRY_SIZE)
        v = start
        while v < stop:
            batch = min(stop - v, entries_per_chunk)
            node_data = self._nodes.read_at(
                layout.node_entry_position(v), batch * layout.NODE_ENTRY_SIZE
            )
            entries = [
                layout.unpack_node_entry(node_data, i * layout.NODE_ENTRY_SIZE)
                for i in range(batch)
            ]
            # Group consecutive nodes whose adjacency fits in one chunk read.
            i = 0
            while i < batch:
                first_offset = entries[i][0]
                j = i
                span = 0
                while j < batch:
                    degree = entries[j][1]
                    size = degree * layout.EDGE_ENTRY_SIZE
                    if span and span + size > chunk_bytes:
                        break
                    span += size
                    j += 1
                if span:
                    edge_data = self._edges.read_at(
                        layout.edge_entry_position(first_offset), span
                    )
                else:
                    edge_data = b""
                yield v + i, [entries[k][1] for k in range(i, j)], edge_data
                i = j
            v += batch

    def iter_adjacency(self, start=0, stop=None,
                       chunk_bytes=_DEFAULT_CHUNK_BYTES):
        """Yield ``(v, neighbours)`` sequentially for ``v`` in [start, stop).

        The scan reads both tables in large sequential chunks, so a full
        pass costs ``ceil(table bytes / B)`` read I/Os -- the access pattern
        SemiCore relies on.
        """
        for first, degrees, edge_data in self.iter_adjacency_chunks(
                start, stop, chunk_bytes):
            view = memoryview(edge_data)
            cursor = 0
            for k, degree in enumerate(degrees):
                size = degree * layout.EDGE_ENTRY_SIZE
                nbrs = array(layout.EDGE_TYPECODE)
                nbrs.frombytes(view[cursor:cursor + size])
                yield first + k, nbrs
                cursor += size

    def edges(self):
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u, nbrs in self.iter_adjacency():
            for v in nbrs:
                if u < v:
                    yield (u, int(v))

    def drop_caches(self):
        """Forget both devices' one-block read caches.

        Back-to-back algorithm runs on the same storage otherwise start
        with whatever block the previous run left cached, which skews
        their I/O figures by a block or two; dropping the caches puts
        every run in the same cold-start state.
        """
        self._nodes.drop_cache()
        self._edges.drop_cache()

    def close(self):
        """Close both backing devices."""
        self._nodes.close()
        self._edges.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return "GraphStorage(n=%d, m=%d)" % (self.num_nodes, self.num_edges)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_node(self, v):
        if not 0 <= v < self.num_nodes:
            raise GraphError("node %d out of range [0, %d)" % (v, self.num_nodes))


def _create_devices(path, block_size, stats):
    """Create a (node, edge) device pair for the requested backend."""
    if path is None:
        node_dev = MemoryBlockDevice(block_size=block_size, stats=stats)
        edge_dev = MemoryBlockDevice(block_size=block_size, stats=stats)
    else:
        node_dev = FileBlockDevice(os.fspath(path) + NODE_SUFFIX, "w+",
                                   block_size=block_size, stats=stats)
        edge_dev = FileBlockDevice(os.fspath(path) + EDGE_SUFFIX, "w+",
                                   block_size=block_size, stats=stats)
    return node_dev, edge_dev
