"""Partition store used by the EMCore baseline.

EMCore (Cheng et al., reproduced here from Section III of the paper) keeps
the graph as disjoint node partitions on disk.  Partitions are loaded
wholesale, shrunk as nodes are finalized, and written back -- EMCore is the
only algorithm in the paper that issues *write* I/Os during decomposition.

Each partition serializes its records as::

    record_count: u32
    repeated: node id u32, degree u32, neighbour ids u32...

Every partition lives in its own block device; all devices share one
:class:`~repro.storage.blockio.IOStats` so EMCore reports a single I/O
figure.
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.storage.blockio import (
    DEFAULT_BLOCK_SIZE,
    FileBlockDevice,
    IOStats,
    MemoryBlockDevice,
)
from repro.storage.partition_codec import decode_records, encode_records

_U32 = 4

# Backwards-compatible aliases: the codec is the single (de)serialization
# code path shared by both execution engines.
_serialize = encode_records
_deserialize = decode_records


class PartitionStore:
    """On-disk store of EMCore partitions with shared I/O accounting."""

    def __init__(self, *, block_size=DEFAULT_BLOCK_SIZE, stats=None,
                 directory=None):
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStats()
        self.directory = directory
        self._devices = {}
        self._sizes = {}
        self._counter = 0

    def write(self, records):
        """Store a new partition; returns ``(partition_id, byte_size)``."""
        return self.write_bytes(encode_records(records))

    def write_bytes(self, data):
        """Store pre-serialized partition bytes (the numpy engine path)."""
        pid = self._counter
        self._counter += 1
        device = self._new_device(pid)
        device.write_at(0, data)
        self._devices[pid] = device
        self._sizes[pid] = len(data)
        return pid, len(data)

    def rewrite(self, pid, records):
        """Replace partition ``pid`` in place; returns the new byte size."""
        return self.rewrite_bytes(pid, encode_records(records))

    def rewrite_bytes(self, pid, data):
        """Replace partition ``pid`` with pre-serialized bytes."""
        self._check(pid)
        device = self._devices[pid]
        device.drop_cache()
        device.write_at(0, data)
        self._sizes[pid] = len(data)
        return len(data)

    def read(self, pid):
        """Load partition ``pid`` as ``[(node, neighbour array), ...]``."""
        return decode_records(self.read_bytes(pid))

    def read_bytes(self, pid):
        """Raw serialized bytes of partition ``pid`` (charges the reads)."""
        self._check(pid)
        device = self._devices[pid]
        return device.read_at(0, self._sizes[pid])

    def size_bytes(self, pid):
        """Serialized size of partition ``pid`` in bytes."""
        self._check(pid)
        return self._sizes[pid]

    def delete(self, pid):
        """Drop partition ``pid`` (after a merge)."""
        self._check(pid)
        device = self._devices.pop(pid)
        self._sizes.pop(pid)
        device.close()
        if self.directory is not None:
            path = self._path(pid)
            if os.path.exists(path):
                os.unlink(path)

    @property
    def partition_ids(self):
        """Sorted ids of the live partitions."""
        return sorted(self._devices)

    def close(self):
        """Release every partition device."""
        for device in self._devices.values():
            device.close()
        self._devices.clear()
        self._sizes.clear()

    # -- internals ----------------------------------------------------------
    def _new_device(self, pid):
        if self.directory is None:
            return MemoryBlockDevice(block_size=self.block_size,
                                     stats=self.stats)
        return FileBlockDevice(self._path(pid), "w+",
                               block_size=self.block_size, stats=self.stats)

    def _path(self, pid):
        return os.path.join(self.directory, "partition_%06d.bin" % pid)

    def _check(self, pid):
        if pid not in self._devices:
            raise StorageError("unknown partition id %r" % (pid,))
