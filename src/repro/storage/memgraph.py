"""A plain in-memory undirected graph.

:class:`MemoryGraph` is the substrate for the in-memory baselines (IMCore,
IMInsert, IMDelete) and the oracle used by the test suite.  It is a thin
adjacency-list structure with the same neighbour semantics as the on-disk
storage: undirected, no self loops, no parallel edges.
"""

from __future__ import annotations

from repro.errors import EdgeExistsError, EdgeNotFoundError, GraphError


def normalize_edges(edges, num_nodes=None):
    """Canonicalize an edge iterable for an undirected simple graph.

    Self loops are dropped, duplicates (in either orientation) are removed
    and each edge is returned as ``(min(u, v), max(u, v))``.  Returns the
    tuple ``(edge_list, num_nodes)`` where ``num_nodes`` is the supplied
    value or ``1 + max node id`` (0 for an empty edge set).
    """
    seen = set()
    result = []
    max_node = -1
    for u, v in edges:
        if u < 0 or v < 0:
            raise GraphError("negative node id in edge (%r, %r)" % (u, v))
        if u == v:
            continue
        if u > v:
            u, v = v, u
        key = (u, v)
        if key in seen:
            continue
        seen.add(key)
        result.append(key)
        if v > max_node:
            max_node = v
    inferred = max_node + 1
    if num_nodes is None:
        num_nodes = inferred
    elif num_nodes < inferred:
        raise GraphError(
            "num_nodes=%d but edges reference node %d" % (num_nodes, max_node)
        )
    return result, num_nodes


class MemoryGraph:
    """An undirected simple graph held fully in memory."""

    def __init__(self, num_nodes=0):
        if num_nodes < 0:
            raise GraphError("num_nodes must be non-negative")
        self._adj = [set() for _ in range(num_nodes)]

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_edges(cls, edges, num_nodes=None):
        """Build a graph from an iterable of ``(u, v)`` pairs."""
        edge_list, n = normalize_edges(edges, num_nodes)
        graph = cls(n)
        for u, v in edge_list:
            graph._adj[u].add(v)
            graph._adj[v].add(u)
        return graph

    @classmethod
    def from_storage(cls, storage):
        """Materialize an on-disk graph in memory (counts the scan I/Os)."""
        graph = cls(storage.num_nodes)
        for v, nbrs in storage.iter_adjacency():
            graph._adj[v].update(nbrs)
        return graph

    # -- basic queries -------------------------------------------------------
    @property
    def num_nodes(self):
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self):
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj) // 2

    @property
    def num_arcs(self):
        """Number of adjacency entries (twice the edge count)."""
        return sum(len(nbrs) for nbrs in self._adj)

    def degree(self, v):
        """Degree of node ``v``."""
        return len(self._adj[v])

    def degrees(self):
        """Degrees of all nodes as a list indexed by node id."""
        return [len(nbrs) for nbrs in self._adj]

    def read_degrees(self):
        """Degrees as an ``array('i')``.

        Storage-protocol alias of :meth:`degrees`, so in-memory graphs can
        be passed to the semi-external algorithms (useful in tests and for
        small dynamic workloads that never touch disk).
        """
        from array import array

        return array("i", (len(nbrs) for nbrs in self._adj))

    def neighbors(self, v):
        """Neighbours of ``v`` in ascending order."""
        return sorted(self._adj[v])

    def has_edge(self, u, v):
        """True when the undirected edge (u, v) is present."""
        if u >= len(self._adj) or v >= len(self._adj) or u < 0 or v < 0:
            return False
        return v in self._adj[u]

    def edges(self):
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in sorted(nbrs):
                if u < v:
                    yield (u, v)

    def iter_adjacency(self, start=0, stop=None):
        """Yield ``(v, neighbours)`` for nodes in ``[start, stop)``."""
        if stop is None:
            stop = len(self._adj)
        for v in range(start, stop):
            yield v, sorted(self._adj[v])

    # -- mutation -------------------------------------------------------------
    def add_node(self):
        """Append a fresh isolated node and return its id."""
        self._adj.append(set())
        return len(self._adj) - 1

    def insert_edge(self, u, v):
        """Insert the undirected edge (u, v); raises on loops/duplicates."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError("self loop (%d, %d) not allowed" % (u, v))
        if v in self._adj[u]:
            raise EdgeExistsError("edge (%d, %d) already present" % (u, v))
        self._adj[u].add(v)
        self._adj[v].add(u)

    def delete_edge(self, u, v):
        """Delete the undirected edge (u, v); raises if absent."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adj[u]:
            raise EdgeNotFoundError("edge (%d, %d) not present" % (u, v))
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def copy(self):
        """Deep copy of the graph."""
        clone = MemoryGraph(len(self._adj))
        clone._adj = [set(nbrs) for nbrs in self._adj]
        return clone

    # -- internals -------------------------------------------------------------
    def _check_node(self, v):
        if not 0 <= v < len(self._adj):
            raise GraphError("node %d out of range [0, %d)" % (v, len(self._adj)))

    def __eq__(self, other):
        if not isinstance(other, MemoryGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self):
        return "MemoryGraph(n=%d, m=%d)" % (self.num_nodes, self.num_edges)
