"""Seeded deterministic fault injection for chaos and recovery testing.

The package has two halves:

* :mod:`repro.faults.plan` -- :class:`FaultPlan` (the seeded schedule),
  :class:`FaultSpec`, the injected-error types and the at-rest
  corruption helpers :func:`flip_bit` / :func:`tear_file`;
* :mod:`repro.faults.device` -- :class:`FaultInjectingBlockDevice`,
  a transparent proxy over any block device that fires the plan's
  faults.

Nothing in here is imported by production code; the service, journal
and shard layers are hardened against *storage errors in general* and
this package merely manufactures them deterministically.
"""

from repro.faults.device import FaultInjectingBlockDevice, wrap
from repro.faults.plan import (
    BIT_FLIP,
    KINDS,
    LATENCY,
    READ_ERROR,
    TORN_WRITE,
    WRITE_ERROR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedReadError,
    InjectedWriteError,
    TornWriteError,
    flip_bit,
    tear_file,
)

__all__ = [
    "BIT_FLIP",
    "KINDS",
    "LATENCY",
    "READ_ERROR",
    "TORN_WRITE",
    "WRITE_ERROR",
    "FaultInjectingBlockDevice",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedReadError",
    "InjectedWriteError",
    "TornWriteError",
    "flip_bit",
    "tear_file",
    "wrap",
]
