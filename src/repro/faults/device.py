"""Fault-injecting block device wrapper.

:class:`FaultInjectingBlockDevice` composes over any object with the
:class:`~repro.storage.blockio.BlockDevice` surface and consults a
:class:`~repro.faults.plan.FaultPlan` before every ``read_at`` /
``write_at`` / ``append``.  It is a duck-typed proxy, not a
``BlockDevice`` subclass: the inner device keeps doing all the real
I/O, caching and stats counting, so wrapping never double-counts block
transfers and production code cannot tell the difference until a fault
fires.

Fault semantics:

* ``read-error`` / ``write-error`` -- the operation raises
  :class:`~repro.faults.plan.InjectedReadError` /
  :class:`~repro.faults.plan.InjectedWriteError` *before* touching the
  inner device (the data is untouched; transient faults succeed on
  retry).
* ``torn-write`` -- a strict prefix of the payload reaches the inner
  device, then :class:`~repro.faults.plan.TornWriteError` simulates
  the crash.  What was written stays written, as on a real power cut.
* ``bit-flip`` -- the payload is silently corrupted (one bit flipped)
  before being written; no error is raised.  This is the fault CRCs
  exist to catch.
* ``latency`` -- the read is delayed by ``spec.arg`` seconds, then
  served normally.
"""

from __future__ import annotations

import time

from repro.faults.plan import (
    BIT_FLIP,
    LATENCY,
    READ_ERROR,
    TORN_WRITE,
    WRITE_ERROR,
    InjectedReadError,
    InjectedWriteError,
    TornWriteError,
)


class FaultInjectingBlockDevice:
    """Proxy a block device, injecting the plan's scheduled faults."""

    def __init__(self, inner, plan, target):
        self._inner = inner
        self._plan = plan
        self._target = target

    # -- identity -----------------------------------------------------------
    @property
    def inner(self):
        """The wrapped device."""
        return self._inner

    @property
    def target(self):
        """The plan target label this wrapper reports as."""
        return self._target

    # -- faulted operations -------------------------------------------------
    def read_at(self, offset, size):
        spec = self._plan.next_fault(self._target, "read")
        if spec is not None:
            if spec.kind == READ_ERROR:
                raise InjectedReadError(
                    "injected read error on %s at offset %d (size %d)"
                    % (self._target, offset, size))
            if spec.kind == LATENCY and spec.arg:
                time.sleep(spec.arg)
        return self._inner.read_at(offset, size)

    def write_at(self, offset, data):
        data = bytes(data)
        spec = self._plan.next_fault(self._target, "write")
        if spec is None:
            return self._inner.write_at(offset, data)
        if spec.kind == WRITE_ERROR:
            raise InjectedWriteError(
                "injected write error on %s at offset %d (size %d)"
                % (self._target, offset, len(data)))
        if spec.kind == TORN_WRITE:
            keep = self._torn_prefix(len(data), spec)
            if keep:
                self._inner.write_at(offset, data[:keep])
            raise TornWriteError(
                "injected torn write on %s at offset %d: %d of %d bytes "
                "persisted" % (self._target, offset, keep, len(data)))
        if spec.kind == BIT_FLIP and data:
            data = self._flipped(data, spec)
        return self._inner.write_at(offset, data)

    def append(self, data):
        data = bytes(data)
        spec = self._plan.next_fault(self._target, "write")
        if spec is None:
            return self._inner.append(data)
        if spec.kind == WRITE_ERROR:
            raise InjectedWriteError(
                "injected write error on %s append (size %d)"
                % (self._target, len(data)))
        if spec.kind == TORN_WRITE:
            keep = self._torn_prefix(len(data), spec)
            offset = self._inner.size
            if keep:
                self._inner.append(data[:keep])
            raise TornWriteError(
                "injected torn append on %s at offset %d: %d of %d bytes "
                "persisted" % (self._target, offset, keep, len(data)))
        if spec.kind == BIT_FLIP and data:
            data = self._flipped(data, spec)
        return self._inner.append(data)

    def _torn_prefix(self, length, spec):
        if length <= 1:
            return 0
        if spec.arg is not None:
            return max(0, min(length - 1, int(length * spec.arg)))
        return self._plan.rng().randrange(length)

    def _flipped(self, data, spec):
        if spec.arg is not None:
            pos = max(0, min(len(data) - 1, int(len(data) * spec.arg)))
            bit = 0
        else:
            rng = self._plan.rng()
            pos = rng.randrange(len(data))
            bit = rng.randrange(8)
        out = bytearray(data)
        out[pos] ^= 1 << bit
        return bytes(out)

    # -- clean delegation ---------------------------------------------------
    @property
    def size(self):
        return self._inner.size

    @property
    def block_size(self):
        return self._inner.block_size

    @property
    def stats(self):
        return self._inner.stats

    @property
    def closed(self):
        return self._inner.closed

    def drop_cache(self):
        self._inner.drop_cache()

    def close(self):
        self._inner.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self):
        return "FaultInjectingBlockDevice(%r, target=%r)" % (
            self._inner, self._target)


def wrap(plan, device, target):
    """Wrap ``device`` so ``plan`` can aim faults at ``target``."""
    return FaultInjectingBlockDevice(device, plan, target)
