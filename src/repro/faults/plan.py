"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is the single source of truth of a fault-injection
run: a list of :class:`FaultSpec` events, each aimed at a *target* (a
free-form label such as ``"graph.nodes"`` or ``"journal"``) and at the
n-th read or write operation that target performs.  Consumers pull
faults from the plan:

* :class:`~repro.faults.device.FaultInjectingBlockDevice` wraps any
  :class:`~repro.storage.blockio.BlockDevice` and asks the plan before
  every ``read_at`` / ``write_at``;
* chaos drivers call :meth:`FaultPlan.next_fault` directly for
  surfaces that do not go through block devices (journal appends,
  checkpoint files), and use the at-rest helpers (:func:`flip_bit`,
  :func:`tear_file`) to damage artifacts exactly as a crashed or
  bit-rotted disk would.

Everything is derived from one integer seed: :meth:`FaultPlan.random`
generates the same schedule for the same seed, per-target operation
counters advance deterministically, and every fired fault is appended
to an injection log (:meth:`report`) so a failing chaos run can be
replayed exactly.

The plan can be *disarmed* (:attr:`armed` / :meth:`calm`): while
disarmed, operations neither fire faults nor advance the counters, so
setup phases (seeding a service, building tables) do not consume the
schedule and the armed phase stays deterministic regardless of how
much work preceded it.
"""

from __future__ import annotations

import fnmatch
import os
import random
from contextlib import contextmanager

from repro.errors import StorageError

#: The fault kinds a plan can schedule.
READ_ERROR = "read-error"
WRITE_ERROR = "write-error"
TORN_WRITE = "torn-write"
BIT_FLIP = "bit-flip"
LATENCY = "latency"

KINDS = (READ_ERROR, WRITE_ERROR, TORN_WRITE, BIT_FLIP, LATENCY)

#: Which operation each kind attaches to.
_KIND_OP = {
    READ_ERROR: "read",
    WRITE_ERROR: "write",
    TORN_WRITE: "write",
    BIT_FLIP: "write",
    LATENCY: "read",
}


class InjectedFault:
    """Mixin marking an exception as injected by a :class:`FaultPlan`."""


class InjectedReadError(InjectedFault, StorageError):
    """A scheduled transient or permanent read failure."""


class InjectedWriteError(InjectedFault, StorageError):
    """A scheduled transient or permanent write failure."""


class TornWriteError(InjectedFault, StorageError):
    """A write that persisted only a prefix before the simulated crash."""


class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    target:
        Label the fault is aimed at; matched with :func:`fnmatch` so
        ``"graph.*"`` hits both tables.
    kind:
        One of :data:`KINDS`.
    index:
        The 0-based operation count (per target, per op direction) the
        fault fires at.
    permanent:
        When True the fault fires at *every* operation from ``index``
        on; transient faults (the default) fire exactly once.
    arg:
        Kind-specific parameter: seconds for :data:`LATENCY`, the kept
        fraction for :data:`TORN_WRITE`, the flipped bit's position
        (as a fraction of the payload) for :data:`BIT_FLIP`.
    """

    __slots__ = ("target", "kind", "index", "permanent", "arg")

    def __init__(self, target, kind, index, *, permanent=False, arg=None):
        if kind not in KINDS:
            raise ValueError("unknown fault kind %r (choose from %r)"
                             % (kind, KINDS))
        if index < 0:
            raise ValueError("fault index must be >= 0, got %d" % index)
        self.target = target
        self.kind = kind
        self.index = index
        self.permanent = permanent
        self.arg = arg

    @property
    def op(self):
        """The operation direction (``"read"``/``"write"``) this hits."""
        return _KIND_OP[self.kind]

    def as_dict(self):
        """Report form of the spec."""
        return {"target": self.target, "kind": self.kind,
                "index": self.index, "permanent": self.permanent,
                "arg": self.arg}

    def __repr__(self):
        return ("FaultSpec(%r, %r, %d%s%s)"
                % (self.target, self.kind, self.index,
                   ", permanent" if self.permanent else "",
                   ", arg=%r" % (self.arg,) if self.arg is not None
                   else ""))


class FaultPlan:
    """A deterministic schedule of faults plus its injection log."""

    def __init__(self, specs=(), *, seed=0):
        self.specs = list(specs)
        self.seed = seed
        self.armed = True
        #: per-(target, op) operation counters.
        self._counters = {}
        #: every fault actually fired, in firing order.
        self._injected = []
        #: RNG for parameters a spec left unspecified (torn-write
        #: split points, bit positions); seeded, so still deterministic.
        self._rng = random.Random(seed ^ 0x5EED)

    # -- construction -------------------------------------------------------
    @classmethod
    def random(cls, seed, count, targets, *, horizon=200,
               kinds=KINDS, permanent_ratio=0.05,
               latency_seconds=0.0005):
        """Generate a seeded schedule of ``count`` faults.

        ``targets`` maps each target label to the fault kinds allowed
        on it (an iterable, or None for every kind); ``horizon`` is the
        operation-index range the faults spread over.  The same
        arguments and seed always produce the same schedule.
        """
        rng = random.Random(seed)
        if not isinstance(targets, dict):
            targets = {target: None for target in targets}
        labels = sorted(targets)
        specs = []
        for _ in range(count):
            target = labels[rng.randrange(len(labels))]
            allowed = targets[target]
            pool = tuple(allowed) if allowed is not None else tuple(kinds)
            kind = pool[rng.randrange(len(pool))]
            index = rng.randrange(horizon)
            permanent = (kind in (READ_ERROR, WRITE_ERROR)
                         and rng.random() < permanent_ratio)
            arg = latency_seconds if kind == LATENCY else None
            specs.append(FaultSpec(target, kind, index,
                                   permanent=permanent, arg=arg))
        return cls(specs, seed=seed)

    # -- arming -------------------------------------------------------------
    @contextmanager
    def calm(self):
        """Context manager: no faults fire and no counters advance."""
        saved = self.armed
        self.armed = False
        try:
            yield self
        finally:
            self.armed = saved

    # -- consumption --------------------------------------------------------
    def next_fault(self, target, op):
        """The fault (or None) scheduled for this target's next op.

        Advances the target's operation counter (armed plans only) and
        logs the fired fault.  At most one fault fires per operation;
        when several specs match the same index, the first in schedule
        order wins and the others are dropped for that index.
        """
        if not self.armed:
            return None
        key = (target, op)
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        for spec in self.specs:
            if spec.op != op or not fnmatch.fnmatch(target, spec.target):
                continue
            if spec.index == index or (spec.permanent
                                       and index >= spec.index):
                self._injected.append(
                    dict(spec.as_dict(), at=index, resolved_target=target))
                return spec
        return None

    def rng(self):
        """The plan's parameter RNG (for consumers needing randomness)."""
        return self._rng

    def wrap(self, device, target):
        """Wrap ``device`` in a fault-injecting proxy aimed at ``target``."""
        from repro.faults.device import FaultInjectingBlockDevice
        return FaultInjectingBlockDevice(device, self, target)

    # -- reporting ----------------------------------------------------------
    @property
    def injected(self):
        """Fired faults, in order (list of dicts)."""
        return list(self._injected)

    def report(self):
        """Summary of the run: schedule size, fired faults, by kind."""
        by_kind = {}
        for event in self._injected:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        return {
            "seed": self.seed,
            "scheduled": len(self.specs),
            "fired": len(self._injected),
            "by_kind": by_kind,
            "events": list(self._injected),
        }

    def __repr__(self):
        return "FaultPlan(seed=%d, specs=%d, fired=%d)" % (
            self.seed, len(self.specs), len(self._injected))


# ----------------------------------------------------------------------
# at-rest corruption helpers (what a bad disk or a crash leaves behind)
# ----------------------------------------------------------------------

def flip_bit(path, offset=None, bit=None, *, rng=None):
    """Flip one bit of the file at ``path``; returns ``(offset, bit)``.

    With ``offset``/``bit`` unspecified they are drawn from ``rng``
    (which must then be given) -- pass a plan's :meth:`FaultPlan.rng`
    for a seeded choice.  Raises ``ValueError`` on an empty file.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError("cannot flip a bit of empty file %s" % path)
    if offset is None:
        offset = rng.randrange(size)
    if bit is None:
        bit = rng.randrange(8) if rng is not None else 0
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))
    return offset, bit


def tear_file(path, keep=None, *, rng=None):
    """Truncate ``path`` to a strict prefix; returns the new size.

    Simulates a torn write / crash mid-append: ``keep`` bytes survive
    (drawn from ``rng`` over ``[0, size)`` when unspecified).
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError("cannot tear empty file %s" % path)
    if keep is None:
        keep = rng.randrange(size)
    if not 0 <= keep < size:
        raise ValueError("keep=%d out of range for %d-byte %s"
                         % (keep, size, path))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep
