"""Prometheus text-format exposition over HTTP, plus a format checker.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
around a :class:`~repro.obs.registry.MetricsRegistry`:

* ``GET /metrics`` -- text exposition format 0.0.4
  (``registry.render_prometheus()``);
* ``GET /metrics.json`` -- the JSON ``registry.snapshot()``;
* anything else -- 404.

Port 0 binds an ephemeral port (the bound port is on ``server.port``),
which is how tests and ``repro serve --metrics-port 0`` avoid
collisions.  The server runs on a daemon thread; rendering takes the
registry lock only briefly, so scrapes never stall the serving plane.

:func:`parse_prometheus_text` is a strict-enough parser for the subset
of the exposition format the registry emits.  It exists so tests and
the CI scrape step can *fail on malformed lines* rather than eyeball
the output: it checks name/label syntax, TYPE consistency, histogram
``_bucket``/``_sum``/``_count`` completeness, that cumulative bucket
counts are monotone and end at ``+Inf``, and that sample values parse
as numbers.
"""

from __future__ import annotations

import json
import math
import re
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import _LABEL_RE, _NAME_RE

__all__ = [
    "MetricsServer",
    "parse_prometheus_text",
    "scrape",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
    r"(?:,|$)")


class _Handler(BaseHTTPRequestHandler):
    """Serves the owning :class:`MetricsServer`'s registry."""

    server_version = "repro-metrics/1"

    def do_GET(self):  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.server.registry.render_prometheus().encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = json.dumps(self.server.registry.snapshot(),
                              sort_keys=True).encode("utf-8")
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path %s" % path)
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        """Silence per-request stderr logging."""


class MetricsServer:
    """A /metrics endpoint for one registry, on a daemon thread.

    Use as a context manager, or call :meth:`start` / :meth:`stop`::

        with MetricsServer(registry, port=0) as server:
            text = scrape(server.url)
    """

    def __init__(self, registry, port=0, host="127.0.0.1"):
        self.registry = registry
        self._requested = (host, port)
        self._httpd = None
        self._thread = None

    @property
    def port(self):
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("metrics server not started")
        return self._httpd.server_address[1]

    @property
    def url(self):
        """The ``http://host:port/metrics`` scrape URL."""
        host = self._requested[0]
        return "http://%s:%d/metrics" % (host, self.port)

    def start(self):
        """Bind the socket and start serving; returns self."""
        if self._httpd is not None:
            raise RuntimeError("metrics server already started")
        httpd = ThreadingHTTPServer(self._requested, _Handler)
        httpd.daemon_threads = True
        httpd.registry = self.registry
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-metrics",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._thread.start()
        return self

    def stop(self):
        """Shut the server down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


def scrape(url, timeout=5.0):
    """Fetch ``url`` and return the decoded body (a plain GET)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _parse_labels(text):
    labels = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            raise ValueError("malformed label block %r" % (text,))
        raw = match.group("value")
        labels[match.group("label")] = (
            raw.replace(r"\"", '"').replace(r"\n", "\n")
            .replace("\\\\", "\\"))
        pos = match.end()
    return labels


def _parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus_text(text):
    """Parse (and validate) exposition text; raises ValueError on error.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Validation covers the
    subset the registry emits: every sample must belong to a declared
    ``# TYPE``; histograms must expose ``_bucket``/``_sum``/``_count``
    with monotone cumulative buckets ending at ``le="+Inf"``.
    """
    families = {}
    current = None
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    "line %d: malformed comment %r" % (lineno, line))
            _, keyword, name = parts[:3]
            rest = parts[3] if len(parts) > 3 else ""
            if not _NAME_RE.match(name):
                raise ValueError(
                    "line %d: invalid metric name %r" % (lineno, name))
            family = families.setdefault(
                name, {"type": None, "help": "", "samples": []})
            if keyword == "TYPE":
                if family["type"] is not None:
                    raise ValueError(
                        "line %d: duplicate TYPE for %s" % (lineno, name))
                if rest not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(
                        "line %d: unknown type %r" % (lineno, rest))
                family["type"] = rest
                current = name
            else:
                family["help"] = rest
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError("line %d: malformed sample %r" % (lineno, line))
        sample = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(
                    "line %d: invalid label name %r" % (lineno, label))
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                "line %d: non-numeric value %r"
                % (lineno, match.group("value"))) from None
        base = sample
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample[:-len(suffix)] if sample.endswith(suffix) else None
            if (trimmed and trimmed in families
                    and families[trimmed]["type"] == "histogram"):
                base = trimmed
                break
        family = families.get(base)
        if family is None or family["type"] is None:
            raise ValueError(
                "line %d: sample %r precedes its # TYPE" % (lineno, sample))
        if family["type"] == "histogram" and base == sample:
            raise ValueError(
                "line %d: bare histogram sample %r (expected _bucket/"
                "_sum/_count)" % (lineno, sample))
        if current != base:
            raise ValueError(
                "line %d: sample %r interleaved outside its family block"
                % (lineno, sample))
        family["samples"].append((sample, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families):
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        series = {}
        sums = set()
        counts = {}
        for sample, labels, value in family["samples"]:
            if sample == name + "_bucket":
                le = labels.get("le")
                if le is None:
                    raise ValueError(
                        "histogram %s bucket without le label" % name)
                key = tuple(sorted((k, v) for k, v in labels.items()
                                   if k != "le"))
                series.setdefault(key, []).append(
                    (_parse_value(le), value))
            elif sample == name + "_sum":
                sums.add(tuple(sorted(labels.items())))
            elif sample == name + "_count":
                counts[tuple(sorted(labels.items()))] = value
            else:
                raise ValueError(
                    "histogram %s has stray sample %s" % (name, sample))
        if not series:
            raise ValueError("histogram %s has no _bucket samples" % name)
        for key, buckets in series.items():
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                raise ValueError(
                    "histogram %s buckets out of order" % name)
            if not math.isinf(bounds[-1]):
                raise ValueError(
                    "histogram %s missing le=\"+Inf\" bucket" % name)
            cumulative = [c for _, c in buckets]
            if any(a > b for a, b in zip(cumulative, cumulative[1:])):
                raise ValueError(
                    "histogram %s cumulative counts not monotone" % name)
            if key not in counts:
                raise ValueError(
                    "histogram %s missing _count for %r" % (name, key))
            if counts[key] != cumulative[-1]:
                raise ValueError(
                    "histogram %s _count %s != +Inf bucket %s"
                    % (name, counts[key], cumulative[-1]))
            if key not in sums:
                raise ValueError(
                    "histogram %s missing _sum for %r" % (name, key))
