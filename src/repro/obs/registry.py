"""A dependency-free metrics registry: counters, gauges, histograms.

The paper judges every algorithm by blocks scanned per pass, yet until
this module the system's counters (``IOStats``, cache hit rates, serving
stats, fault/quarantine state) lived in per-subsystem ad-hoc dicts with
no common schema.  :class:`MetricsRegistry` gives them one home:

* three metric kinds -- :class:`Counter` (monotone), :class:`Gauge`
  (goes both ways), :class:`Histogram` (fixed cumulative buckets) --
  registered under Prometheus-style names with optional *labels*
  (engine, shard, algorithm, stage, ...);
* **push or pull**: hot paths call ``inc()``/``observe()`` on real
  metric objects, while subsystems that already keep exact counters
  (``IOStats``, ``CacheStats``) attach a ``set_function`` callback so
  the registry *reads* them at collection time instead of taxing the
  hot path twice;
* a point-in-time :meth:`MetricsRegistry.snapshot` (plain dicts, JSON
  friendly) and :meth:`MetricsRegistry.render_prometheus` (text
  exposition format 0.0.4, served by
  :mod:`repro.obs.exposition`).

Thread safety: one registry-wide lock guards every mutation and every
collection, so counters raced from any number of threads stay exact and
a snapshot is a consistent point in time.  The lock is held for a few
increments only -- never across I/O.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Iterable, Sequence

#: Pull-mode callback attached via ``set_function``.
PullFn = Callable[[], float]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_global_registry",
    "set_global_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): microseconds through tens of
#: seconds, the spread between a cache hit and a full maintenance batch.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _format_value(value: Any) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return "%d" % value
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(value)


def _escape_label_value(value: Any) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: Any) -> str:
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


class Counter:
    """A monotonically increasing value (or a pull-mode view of one)."""

    kind = "counter"

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: Any) -> None:
        self._lock = lock
        self._value: float = 0
        self._fn: PullFn | None = None

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                "counters only go up; inc(%r) rejected" % (amount,))
        with self._lock:
            self._value += amount

    def set_function(self, fn: PullFn) -> "Counter":
        """Make this a pull-mode counter reading ``fn()`` at collection."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        """Current value (calls the pull function when attached)."""
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (or a pull-mode view of one)."""

    kind = "gauge"

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: Any) -> None:
        self._lock = lock
        self._value: float = 0
        self._fn: PullFn | None = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def set_function(self, fn: PullFn) -> "Gauge":
        """Make this a pull-mode gauge reading ``fn()`` at collection."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        """Current value (calls the pull function when attached)."""
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observations.

    ``buckets`` are the strictly increasing upper bounds; a final
    ``+Inf`` bucket is implicit.  Rendering is cumulative, exactly as
    the Prometheus exposition format defines ``le`` buckets.
    """

    kind = "histogram"

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: Any,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                "bucket bounds must be strictly increasing: %r" % (bounds,))
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
            if not bounds:
                raise ValueError("histogram needs a finite bucket bound")
        self._lock = lock
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out = []
        for bound, count in zip(self.buckets, counts):
            total += count
            out.append((bound, total))
        out.append((float("inf"), total + counts[-1]))
        return out


class MetricFamily:
    """A named metric plus its labeled children.

    A family with no label names *is* its single child: ``inc``/``set``
    /``observe``/``value`` delegate to the unlabeled child, so simple
    metrics stay one-liners.  ``labels(shard="3")`` materializes (or
    returns) the child for that label combination.
    """

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help: str, kind: str, labelnames: Iterable[str],
                 factory: Callable[[], Any]) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._factory = factory
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = factory()

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """The child metric for one label-value combination."""
        if values and kwargs:
            raise ValueError("pass label values either positionally or "
                             "by keyword, not both")
        if kwargs:
            try:
                values = tuple(str(kwargs.pop(name))
                               for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    "missing label %s for metric %s"
                    % (exc, self.name)) from None
            if kwargs:
                raise ValueError(
                    "unknown label(s) %s for metric %s (declared: %s)"
                    % (sorted(kwargs), self.name,
                       ", ".join(self.labelnames) or "none"))
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                "metric %s takes %d label value(s), got %d"
                % (self.name, len(self.labelnames), len(values)))
        with self._registry._lock:
            child = self._children.get(values)
            if child is None:
                child = self._children[values] = self._factory()
            return child

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        """``[(labelvalues, metric), ...]`` sorted by label values."""
        with self._registry._lock:
            return sorted(self._children.items())

    # -- unlabeled convenience delegation -------------------------------
    def _sole(self) -> Any:
        if self.labelnames:
            raise ValueError(
                "metric %s is labeled by (%s); call .labels(...) first"
                % (self.name, ", ".join(self.labelnames)))
        return self._children[()]

    def inc(self, amount: float = 1) -> None:
        return self._sole().inc(amount)

    def dec(self, amount: float = 1) -> None:
        return self._sole().dec(amount)

    def set(self, value: float) -> None:
        return self._sole().set(value)

    def observe(self, value: float) -> None:
        return self._sole().observe(value)

    def set_function(self, fn: PullFn) -> Any:
        return self._sole().set_function(fn)

    @property
    def value(self) -> float:
        return self._sole().value

    @property
    def count(self) -> int:
        return self._sole().count

    @property
    def sum(self) -> float:
        return self._sole().sum

    def cumulative(self) -> list[tuple[float, int]]:
        return self._sole().cumulative()


class MetricsRegistry:
    """Thread-safe home for every metric of one serving/compute plane.

    Registration is idempotent: asking again for a name returns the
    existing family when kind and label names match, and raises
    otherwise -- so independent subsystems can share one registry
    without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}
        self._order: list[str] = []

    # -- registration ---------------------------------------------------
    def _register(self, name: str, help: str, kind: str,
                  labelnames: Iterable[str],
                  factory: Callable[[], Any]) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % (label,))
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (family.kind != kind
                        or family.labelnames != labelnames):
                    raise ValueError(
                        "metric %s already registered as %s%r, not %s%r"
                        % (name, family.kind, family.labelnames,
                           kind, labelnames))
                return family
            family = MetricFamily(self, name, help, kind, labelnames,
                                  factory)
            self._families[name] = family
            self._order.append(name)
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help, "counter", labelnames,
                              lambda: Counter(self._lock))

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help, "gauge", labelnames,
                              lambda: Gauge(self._lock))

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._register(name, help, "histogram", labelnames,
                              lambda: Histogram(self._lock, buckets))

    def unregister(self, name: str) -> None:
        """Remove a family (test/re-wiring helper); missing names ok."""
        with self._lock:
            if name in self._families:
                del self._families[name]
                self._order.remove(name)

    def names(self) -> list[str]:
        """Registered family names, in registration order."""
        with self._lock:
            return list(self._order)

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name`` (None when absent)."""
        with self._lock:
            return self._families.get(name)

    # -- collection -----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Point-in-time plain-dict view of every metric.

        ``{name: {"kind": ..., "help": ..., "values": [
        {"labels": {...}, "value": ...} | {"labels": ...,
        "buckets": [[le, cumulative], ...], "sum": ..., "count": ...},
        ...]}}`` -- JSON-serializable throughout.
        """
        out = {}
        for name in self.names():
            family = self.get(name)
            if family is None:
                continue
            values = []
            for labelvalues, metric in family.children():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    values.append({
                        "labels": labels,
                        "buckets": [[bound, count] for bound, count
                                    in metric.cumulative()],
                        "sum": metric.sum,
                        "count": metric.count,
                    })
                else:
                    values.append({"labels": labels,
                                   "value": metric.value})
            out[name] = {"kind": family.kind, "help": family.help,
                         "values": values}
        return out

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        lines = []
        for name in self.names():
            family = self.get(name)
            if family is None:
                continue
            if family.help:
                lines.append("# HELP %s %s"
                             % (name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (name, family.kind))
            for labelvalues, metric in family.children():
                pairs = list(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    for bound, count in metric.cumulative():
                        le = ("+Inf" if math.isinf(bound)
                              else _format_value(bound))
                        lines.append("%s_bucket%s %d" % (
                            name,
                            _render_labels(pairs + [("le", le)]),
                            count))
                    lines.append("%s_sum%s %s" % (
                        name, _render_labels(pairs),
                        _format_value(metric.sum)))
                    lines.append("%s_count%s %d" % (
                        name, _render_labels(pairs), metric.count))
                else:
                    lines.append("%s%s %s" % (
                        name, _render_labels(pairs),
                        _format_value(metric.value)))
        return "\n".join(lines) + "\n" if lines else ""


def _render_labels(pairs: Sequence[tuple[str, Any]]) -> str:
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (label, _escape_label_value(value))
        for label, value in pairs)


#: Process-wide default registry: CLI entry points and benchmarks that
#: have no service object of their own hang metrics here.
_global_registry = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous
