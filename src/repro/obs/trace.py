"""Phase-attributed tracing: nested spans with I/O deltas.

The I/O model charges every algorithm per *pass* -- so the unit of
attribution worth tracing is the pass, the exchange round, the apply
stage, not the individual block read.  A span marks one such phase::

    from repro.obs.trace import span

    with span("semicore.pass", io=graph.io_stats, iteration=3):
        ...  # one sequential sweep

When tracing is **disabled** (the default) ``span()`` returns a shared
no-op object: the cost is one global read and an empty ``with`` block,
which is what keeps the overhead budget (<= 5% on the fig3 bench,
asserted by ``benchmarks/bench_observability.py``) trivially met.
Tracing never mutates anything the algorithms read, so cores, traces and
``IOStats`` block counts are bit-identical with tracing on or off
(asserted by ``tests/test_obs_trace.py``).

When tracing is **enabled** (:func:`enable_tracing`) each span records:

* wall-clock ``seconds`` (``time.perf_counter`` bracket);
* the delta of the attached :class:`~repro.storage.blockio.IOStats`
  between enter and exit (``read_ios``/``write_ios``/``bytes_read``/
  ``bytes_written``) -- attribution of block I/O to exactly this phase;
* nesting: a per-thread stack gives every span a ``parent_id`` and
  ``depth``, so a ``service.apply`` span contains its
  ``service.maintain`` / ``service.publish`` children;
* free-form attributes (``shard=3``, ``algorithm="SemiCore*"``, ...).

Finished spans go to an in-memory ring (:attr:`Tracer.records`) and,
when a sink is attached, as one structured JSONL line per span.  With a
registry attached every span also feeds the
``repro_span_seconds{name=...}`` histogram, bridging traces into the
/metrics exposition.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "span",
    "tracing_enabled",
]

_tracer = None
_tls = threading.local()


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **attrs):
        """No-op (mirrors :meth:`Span.annotate`)."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live phase measurement; use as a context manager."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "_tracer", "_io", "_io_before", "_started")

    def __init__(self, tracer, name, io=None, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._tracer = tracer
        self._io = io
        self._io_before = None
        self._started = None
        self.span_id = None
        self.parent_id = None
        self.depth = 0

    def annotate(self, **attrs):
        """Attach attributes discovered mid-phase (e.g. changed counts)."""
        self.attrs.update(attrs)

    def __enter__(self):
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        self.span_id = self._tracer._next_id()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        if self._io is not None:
            self._io_before = self._io.snapshot()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        seconds = time.perf_counter() - self._started
        stack = getattr(_tls, "stack", ())
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "seconds": seconds,
        }
        if self._io is not None:
            delta = self._io.delta_since(self._io_before)
            record["read_ios"] = delta.read_ios
            record["write_ios"] = delta.write_ios
            record["bytes_read"] = delta.bytes_read
            record["bytes_written"] = delta.bytes_written
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer._record(record)
        return False


class Tracer:
    """Collects finished spans; owns the sink and the span-id sequence."""

    def __init__(self, sink=None, *, keep=4096, registry=None):
        #: Most recent ``keep`` finished span records (dicts).
        self.records = deque(maxlen=keep)
        self.spans_recorded = 0
        self._sink = sink
        self._own_sink = False
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._span_seconds = None
        if registry is not None:
            self.bind_registry(registry)

    @classmethod
    def to_path(cls, path, **kwargs):
        """A tracer writing JSONL to ``path`` (closed with the tracer)."""
        tracer = cls(open(path, "w", encoding="utf-8"), **kwargs)
        tracer._own_sink = True
        return tracer

    def bind_registry(self, registry):
        """Feed every span's duration into ``repro_span_seconds{name=}``."""
        self._span_seconds = registry.histogram(
            "repro_span_seconds",
            "Wall-clock seconds of traced phases, by span name.",
            labelnames=("name",))
        return self

    def span(self, name, io=None, **attrs):
        """A live :class:`Span`; use ``with tracer.span(...)``."""
        return Span(self, name, io=io, attrs=attrs)

    def _next_id(self):
        with self._lock:
            return next(self._ids)

    def _record(self, record):
        line = None
        if self._sink is not None:
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":"))
        with self._lock:
            self.records.append(record)
            self.spans_recorded += 1
            if line is not None:
                self._sink.write(line + "\n")
        if self._span_seconds is not None:
            self._span_seconds.labels(name=record["name"]).observe(
                record["seconds"])

    def flush(self):
        """Flush the sink (no-op without one)."""
        with self._lock:
            if self._sink is not None and hasattr(self._sink, "flush"):
                self._sink.flush()

    def close(self):
        """Flush, and close the sink if the tracer opened it."""
        self.flush()
        with self._lock:
            if self._own_sink and self._sink is not None:
                self._sink.close()
                self._sink = None


def enable_tracing(sink=None, *, path=None, keep=4096, registry=None):
    """Install a process-wide tracer; returns it.

    ``sink`` is any object with ``write`` (JSONL, one line per span);
    ``path`` opens a file sink owned by the tracer.  With neither,
    spans only land in the in-memory ring.  Nesting state is
    per-thread, so threaded readers trace independently.
    """
    global _tracer
    if sink is not None and path is not None:
        raise ValueError("pass sink or path, not both")
    if path is not None:
        tracer = Tracer.to_path(path, keep=keep, registry=registry)
    else:
        tracer = Tracer(sink, keep=keep, registry=registry)
    _tracer = tracer
    return tracer


def disable_tracing():
    """Uninstall (and close) the process-wide tracer, if any."""
    global _tracer
    tracer, _tracer = _tracer, None
    if tracer is not None:
        tracer.close()
    return tracer


def current_tracer():
    """The installed tracer, or None while tracing is disabled."""
    return _tracer


def tracing_enabled():
    """Whether a process-wide tracer is installed."""
    return _tracer is not None


def span(name, io=None, **attrs):
    """A span under the installed tracer, or the shared no-op span.

    This is the only call sites pay while tracing is off: one module
    global read and the return of a shared object.
    """
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, io=io, **attrs)
