"""Unified telemetry plane: metrics, phase-attributed traces, exposition.

Three small, dependency-free pieces:

* :mod:`repro.obs.registry` -- thread-safe :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms with labeled children and
  push *or* pull collection;
* :mod:`repro.obs.trace` -- nested :func:`span` phases recording wall
  time + ``IOStats`` deltas, JSONL sink, near-zero cost while disabled;
* :mod:`repro.obs.exposition` -- ``/metrics`` HTTP endpoint in
  Prometheus text format 0.0.4 plus a strict :func:`parse_prometheus_text`
  validator used by tests and CI.

See ARCHITECTURE.md §7 for the metric-name catalogue and span taxonomy.
"""

from .exposition import MetricsServer, parse_prometheus_text, scrape
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_global_registry,
    set_global_registry,
)
from .trace import (
    Span,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "get_global_registry",
    "parse_prometheus_text",
    "scrape",
    "set_global_registry",
    "span",
    "tracing_enabled",
]
