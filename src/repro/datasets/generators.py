"""Synthetic graph generators standing in for the paper's real datasets.

The paper evaluates on 12 real graphs (Table I) that are not shipped here,
so the registry builds *proxies*: random graphs whose structural knobs --
degree skew, density, ``kmax`` and propagation depth -- are chosen per
dataset.  The knobs matter because they drive the algorithms' behaviour:

* degree skew and density control the work per iteration;
* a planted near-clique pins ``kmax`` (scaled down from Table I);
* a trailing path whose degree-1 endpoint has the *highest* node id makes
  value corrections propagate against the scan order one hop per pass,
  reproducing the long convergence tails of the web graphs (Fig. 3(b):
  UK needs 2137 iterations with fewer than 100 changes each).

All generators are deterministic in ``seed`` and return ``(edges, n)``
with edges canonicalized as ``(min, max)`` pairs, no loops, no duplicates.
"""

from __future__ import annotations

import random


def paper_example_graph():
    """The 9-node sample graph of Fig. 1.

    Reconstructed from the worked examples: ``{v0, v1, v2, v3}`` is a
    3-core, ``core(v4..v7) = 2`` and ``core(v8) = 1``; the initial degrees
    match the ``Init`` row of Fig. 2 (3, 3, 4, 6, 3, 5, 3, 2, 1).
    """
    edges = [
        (0, 1), (0, 2), (0, 3),
        (1, 2), (1, 3),
        (2, 3), (2, 4),
        (3, 4), (3, 5), (3, 6),
        (4, 5),
        (5, 6), (5, 7), (5, 8),
        (6, 7),
    ]
    return edges, 9


def complete_graph(n):
    """All pairs on ``n`` nodes (core number ``n - 1`` everywhere)."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return edges, n


def cycle_graph(n):
    """A ring (core number 2 everywhere, for n >= 3)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    return [(v, v + 1) for v in range(n - 1)] + [(0, n - 1)], n


def path_graph(n):
    """A simple path (core number 1 everywhere, for n >= 2)."""
    return [(v, v + 1) for v in range(n - 1)], n


def star_graph(n):
    """One hub and ``n - 1`` leaves (core number 1 everywhere)."""
    return [(0, v) for v in range(1, n)], n


def erdos_renyi(n, m, seed=0):
    """``m`` distinct uniform random edges on ``n`` nodes."""
    limit = n * (n - 1) // 2
    if m > limit:
        raise ValueError("cannot place %d edges on %d nodes" % (m, n))
    rng = random.Random(seed)
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    return sorted(chosen), n


def barabasi_albert(n, attach, seed=0):
    """Preferential attachment: each new node links to ``attach`` targets.

    Produces the heavy-tailed degree distribution typical of the social
    networks in the paper's small group (Youtube, LJ, Orkut, Twitter).
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n <= attach:
        return complete_graph(n)
    rng = random.Random(seed)
    edges = []
    targets_pool = []
    # Seed with a clique on attach + 1 nodes.
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            edges.append((u, v))
            targets_pool.extend((u, v))
    for v in range(attach + 1, n):
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(targets_pool))
        for u in targets:
            edges.append((u, v) if u < v else (v, u))
            targets_pool.extend((u, v))
    return sorted(set(edges)), n


def rmat(n, m, seed=0, a=0.57, b=0.19, c=0.19):
    """R-MAT sampler: skewed web-graph-like edges on ``n`` nodes.

    Standard Graph500 parameters by default (d = 1 - a - b - c).  Edges
    whose endpoints collide or fall outside ``[0, n)`` are re-sampled.
    """
    if n < 2:
        raise ValueError("rmat needs at least 2 nodes")
    rng = random.Random(seed)
    scale = max(1, (n - 1).bit_length())
    side = 1 << scale
    ab = a + b
    abc = a + b + c
    chosen = set()
    attempts = 0
    limit = 200 * m + 1000
    while len(chosen) < m and attempts < limit:
        attempts += 1
        u = v = 0
        half = side
        for _ in range(scale):
            half >>= 1
            r = rng.random()
            if r < a:
                pass
            elif r < ab:
                v += half
            elif r < abc:
                u += half
            else:
                u += half
                v += half
        if u == v or u >= n or v >= n:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    return sorted(chosen), n


def plant_clique(edges, n, members, seed=0):
    """Densify a random node subset into a clique (pins ``kmax``).

    Returns the augmented edge list; the planted ``members``-node clique
    guarantees a core of number ``members - 1``.
    """
    if members > n:
        raise ValueError("clique of %d nodes needs n >= %d" % (members, members))
    rng = random.Random(seed)
    chosen = rng.sample(range(n), members)
    edge_set = set(edges)
    for i, u in enumerate(chosen):
        for v in chosen[i + 1:]:
            edge_set.add((u, v) if u < v else (v, u))
    return sorted(edge_set), n


def append_tail_path(edges, n, length, anchor=0):
    """Append a path of ``length`` fresh nodes with the weak end last.

    The path is ``anchor - n - (n+1) - ... - (n+length-1)``; the degree-1
    endpoint gets the highest node id, so each forward Gauss-Seidel pass
    of SemiCore repairs only one more hop -- the mechanism behind the
    paper's 2137-iteration UK run.
    """
    if length <= 0:
        return list(edges), n
    edges = list(edges)
    previous = anchor
    for i in range(length):
        node = n + i
        edges.append((previous, node) if previous < node else (node, previous))
        previous = node
    return edges, n + length


def social_graph(n, attach, clique, seed=0):
    """Preferential-attachment base with a planted clique."""
    edges, n = barabasi_albert(n, attach, seed=seed)
    return plant_clique(edges, n, clique, seed=seed + 1)


def web_graph(n, edges_per_node, clique, tail, seed=0):
    """R-MAT base with a planted clique and a long propagation tail."""
    core_nodes = max(2, n - tail)
    edges, _ = rmat(core_nodes, edges_per_node * core_nodes, seed=seed)
    edges, _ = plant_clique(edges, core_nodes, min(clique, core_nodes),
                            seed=seed + 1)
    return append_tail_path(edges, core_nodes, tail)


def citation_graph(n, m, clique, seed=0):
    """Uniform random citations with a small planted community."""
    edges, n = erdos_renyi(n, m, seed=seed)
    return plant_clique(edges, n, clique, seed=seed + 1)


def collaboration_graph(n, groups, min_size, max_size, clique, seed=0):
    """Union of author cliques, the DBLP-style co-authorship structure."""
    rng = random.Random(seed)
    edge_set = set()
    for _ in range(groups):
        size = rng.randint(min_size, max_size)
        authors = rng.sample(range(n), size)
        for i, u in enumerate(authors):
            for v in authors[i + 1:]:
                edge_set.add((u, v) if u < v else (v, u))
    return plant_clique(sorted(edge_set), n, clique, seed=seed + 1)
