"""Registry of the paper's 12 datasets as scaled synthetic proxies.

Table I of the paper lists six "small" graphs (DBLP .. Orkut) and six
"big" graphs (Webbase .. Clueweb).  Each entry here records the paper's
published statistics alongside a generator configuration that reproduces
the dataset's *character* at laptop scale: density, degree skew, a scaled
``kmax`` via a planted clique, and -- for the web graphs -- a propagation
tail that recreates their slow SemiCore convergence.

``scale`` multiplies the proxy's node count (and edge budget); dataset
construction is deterministic given ``(name, scale, seed)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.datasets import generators
from repro.errors import ReproError
from repro.storage.graphstore import GraphStorage


@dataclass(frozen=True)
class PaperStats:
    """The dataset's row of Table I (for report headers)."""

    nodes: int
    edges: int
    density: float
    kmax: int


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset proxy."""

    name: str
    group: str  # "small" | "big"
    description: str
    paper: PaperStats
    build: Callable[[float, int], Tuple[list, int]]

    def generate(self, scale=1.0, seed=None):
        """Return ``(edges, num_nodes)`` for this proxy."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        if seed is None:
            seed = _default_seed(self.name)
        return self.build(scale, seed)


def _default_seed(name):
    return sum(ord(ch) for ch in name) * 7919 % (2 ** 31)


def _scaled(value, scale, minimum=2):
    return max(minimum, int(round(value * scale)))


def _social(n, attach, clique):
    def build(scale, seed):
        return generators.social_graph(
            _scaled(n, scale), attach, _scaled(clique, min(1.0, scale), 3),
            seed=seed,
        )
    return build


def _web(n, per_node, clique, tail):
    def build(scale, seed):
        return generators.web_graph(
            _scaled(n, scale), per_node,
            _scaled(clique, min(1.0, scale), 3),
            _scaled(tail, scale, 4), seed=seed,
        )
    return build


def _citation(n, m, clique):
    def build(scale, seed):
        return generators.citation_graph(
            _scaled(n, scale), _scaled(m, scale),
            _scaled(clique, min(1.0, scale), 3), seed=seed,
        )
    return build


def _collab(n, groups, min_size, max_size, clique):
    def build(scale, seed):
        return generators.collaboration_graph(
            _scaled(n, scale), _scaled(groups, scale), min_size, max_size,
            _scaled(clique, min(1.0, scale), 3), seed=seed,
        )
    return build


DATASETS = {
    # ---- small group (Fig. 9 a/c/e) -----------------------------------
    "dblp": DatasetSpec(
        "dblp", "small", "co-authorship network (union of paper cliques)",
        PaperStats(317_080, 1_049_866, 3.31, 113),
        _collab(3000, 2200, 2, 5, 20),
    ),
    "youtube": DatasetSpec(
        "youtube", "small", "social friendship network",
        PaperStats(1_134_890, 2_987_624, 2.63, 51),
        _social(5000, 2, 14),
    ),
    "wiki": DatasetSpec(
        "wiki", "small", "discussion network",
        PaperStats(2_394_385, 5_021_410, 2.10, 131),
        _social(6000, 2, 18),
    ),
    "cpt": DatasetSpec(
        "cpt", "small", "patent citation graph",
        PaperStats(3_774_768, 16_518_948, 4.38, 64),
        _citation(6000, 26000, 13),
    ),
    "lj": DatasetSpec(
        "lj", "small", "LiveJournal blogging community",
        PaperStats(3_997_962, 34_681_189, 8.67, 360),
        _social(6000, 6, 26),
    ),
    "orkut": DatasetSpec(
        "orkut", "small", "dense online social network",
        PaperStats(3_072_441, 117_185_083, 38.14, 253),
        _social(3000, 18, 34),
    ),
    # ---- big group (Fig. 9 b/d/f) --------------------------------------
    "webbase": DatasetSpec(
        "webbase", "big", "2001 WebBase crawl",
        PaperStats(118_142_155, 1_019_903_190, 8.63, 1506),
        _web(14000, 6, 30, 60),
    ),
    "it": DatasetSpec(
        "it", "big", ".it domain crawl",
        PaperStats(41_291_594, 1_150_725_436, 27.86, 3224),
        _web(7000, 16, 40, 40),
    ),
    "twitter": DatasetSpec(
        "twitter", "big", "follower network",
        PaperStats(41_652_230, 1_468_365_182, 35.25, 2488),
        _social(8000, 14, 36),
    ),
    "sk": DatasetSpec(
        "sk", "big", ".sk domain crawl",
        PaperStats(50_636_154, 1_949_412_601, 38.49, 4510),
        _web(7000, 20, 44, 50),
    ),
    "uk": DatasetSpec(
        "uk", "big", "2007 .uk snapshot (DELIS)",
        PaperStats(105_896_555, 3_738_733_648, 35.30, 5704),
        _web(8000, 12, 48, 120),
    ),
    "clueweb": DatasetSpec(
        "clueweb", "big", "ClueWeb12 web graph",
        PaperStats(978_408_098, 42_574_107_469, 43.51, 4244),
        _web(20000, 10, 42, 80),
    ),
}

SMALL_DATASETS = [s.name for s in DATASETS.values() if s.group == "small"]
BIG_DATASETS = [s.name for s in DATASETS.values() if s.group == "big"]


def dataset_names():
    """All registry names, small group first."""
    return SMALL_DATASETS + BIG_DATASETS


def get_spec(name):
    """Look up a :class:`DatasetSpec`; raises on unknown names."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise ReproError(
            "unknown dataset %r (known: %s)" % (name, ", ".join(DATASETS))
        ) from None


def generate_dataset(name, scale=1.0, seed=None):
    """Return ``(edges, num_nodes)`` for the named proxy."""
    return get_spec(name).generate(scale, seed)


def load_dataset(name, scale=1.0, seed=None, *, cache_dir=None,
                 block_size=None):
    """Build (or reopen) the named proxy as :class:`GraphStorage`.

    With ``cache_dir`` the tables are built once per ``(name, scale,
    seed)`` and reopened on later calls -- benchmark runs use this to
    avoid regenerating graphs.  Without it the tables live in memory.
    """
    spec = get_spec(name)
    if seed is None:
        seed = _default_seed(spec.name)
    kwargs = {}
    if block_size is not None:
        kwargs["block_size"] = block_size
    if cache_dir is None:
        edges, n = spec.generate(scale, seed)
        return GraphStorage.from_edges(edges, n, **kwargs)
    os.makedirs(cache_dir, exist_ok=True)
    prefix = os.path.join(
        cache_dir, "%s_s%s_r%d" % (spec.name, str(scale).replace(".", "_"),
                                   seed)
    )
    if os.path.exists(prefix + ".nodes") and os.path.exists(prefix + ".edges"):
        return GraphStorage.open(prefix, **kwargs)
    edges, n = spec.generate(scale, seed)
    storage = GraphStorage.from_edges(edges, n, path=prefix, **kwargs)
    storage.close()
    return GraphStorage.open(prefix, **kwargs)
