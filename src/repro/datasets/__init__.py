"""Synthetic datasets, sampling and edge-list I/O."""

from repro.datasets import generators
from repro.datasets.io import (
    BinaryEdgeFile,
    EdgeListFile,
    read_binary_edges,
    read_edge_list,
    write_binary_edges,
    write_edge_list,
)
from repro.datasets.registry import (
    BIG_DATASETS,
    DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    PaperStats,
    dataset_names,
    generate_dataset,
    get_spec,
    load_dataset,
)
from repro.datasets.sampling import sample_edges, sample_nodes
from repro.datasets.stats import (
    degree_skew,
    degree_statistics,
    estimate_semi_external_memory,
    graph_statistics,
)

__all__ = [
    "generators",
    "DATASETS",
    "SMALL_DATASETS",
    "BIG_DATASETS",
    "DatasetSpec",
    "PaperStats",
    "dataset_names",
    "get_spec",
    "generate_dataset",
    "load_dataset",
    "sample_nodes",
    "sample_edges",
    "graph_statistics",
    "degree_statistics",
    "degree_skew",
    "estimate_semi_external_memory",
    "read_edge_list",
    "write_edge_list",
    "read_binary_edges",
    "write_binary_edges",
    "EdgeListFile",
    "BinaryEdgeFile",
]
