"""Edge-list file formats: SNAP-style text and packed binary.

Both readers are *re-iterable* objects (each ``iter()`` reopens the
file), which is what the semi-external builder in
:mod:`repro.storage.builder` needs for its multiple placement passes.
"""

from __future__ import annotations

import os
import struct

from repro.errors import ReproError

_PAIR = struct.Struct("<II")


def write_edge_list(path, edges, header=None):
    """Write edges as ``u<TAB>v`` text lines (SNAP convention)."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        if header:
            for line in header.splitlines():
                handle.write("# %s\n" % line)
        for u, v in edges:
            handle.write("%d\t%d\n" % (u, v))
            count += 1
    return count


def read_edge_list(path):
    """Yield ``(u, v)`` pairs from a text edge list, skipping comments."""
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ReproError(
                    "%s:%d: malformed edge line %r" % (path, lineno, line)
                )
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError:
                raise ReproError(
                    "%s:%d: non-integer endpoints %r" % (path, lineno, line)
                ) from None


def write_binary_edges(path, edges):
    """Write edges as packed little-endian u32 pairs."""
    count = 0
    with open(path, "wb") as handle:
        for u, v in edges:
            handle.write(_PAIR.pack(u, v))
            count += 1
    return count


def read_binary_edges(path):
    """Yield ``(u, v)`` pairs from a packed binary edge file."""
    size = os.path.getsize(path)
    if size % _PAIR.size:
        raise ReproError(
            "%s: size %d is not a multiple of %d" % (path, size, _PAIR.size)
        )
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_PAIR.size * 4096)
            if not chunk:
                break
            for offset in range(0, len(chunk), _PAIR.size):
                yield _PAIR.unpack_from(chunk, offset)


class EdgeListFile:
    """Re-iterable view over a text edge list."""

    def __init__(self, path):
        self.path = os.fspath(path)

    def __iter__(self):
        return read_edge_list(self.path)


class BinaryEdgeFile:
    """Re-iterable view over a packed binary edge file."""

    def __init__(self, path):
        self.path = os.fspath(path)

    def __iter__(self):
        return read_binary_edges(self.path)
