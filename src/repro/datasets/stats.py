"""Descriptive statistics of a graph (the Table I columns and more).

Used by the CLI and by the Table I benchmark to describe a proxy next to
the published statistics of the original dataset.
"""

from __future__ import annotations

import math


def degree_statistics(degrees):
    """Summary of a degree sequence: min/max/mean and key percentiles."""
    if not len(degrees):
        return {
            "min": 0, "max": 0, "mean": 0.0, "p50": 0, "p90": 0,
            "p99": 0, "isolated": 0,
        }
    ordered = sorted(degrees)
    n = len(ordered)

    def percentile(q):
        return ordered[min(n - 1, int(q * n))]

    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "p50": percentile(0.50),
        "p90": percentile(0.90),
        "p99": percentile(0.99),
        "isolated": sum(1 for d in ordered if d == 0),
    }


def degree_skew(degrees):
    """Gini-style inequality of the degree sequence (0 = uniform).

    Social and web graphs score high; the proxies are checked against
    this to make sure the generators reproduce degree skew, not just
    counts.
    """
    ordered = sorted(degrees)
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total == 0:
        return 0.0
    cumulative = 0
    weighted = 0
    for i, d in enumerate(ordered, 1):
        cumulative += d
        weighted += cumulative
    # Gini = 1 - 2 * B where B is the area under the Lorenz curve.
    return 1.0 - 2.0 * (weighted - total / 2.0) / (n * total)


def graph_statistics(graph, *, cores=None):
    """One dict with the paper's Table I columns plus degree structure."""
    degrees = list(graph.read_degrees())
    n = graph.num_nodes
    m = graph.num_edges
    stats = {
        "nodes": n,
        "edges": m,
        "density": (m / n) if n else 0.0,
        "degree": degree_statistics(degrees),
        "degree_skew": degree_skew(degrees),
    }
    if cores is not None:
        stats["kmax"] = max(cores) if len(cores) else 0
        stats["core_mean"] = (sum(cores) / len(cores)) if len(cores) else 0.0
    return stats


def estimate_semi_external_memory(num_nodes, *, with_cnt=True,
                                  bytes_per_value=2):
    """The paper's memory story: bytes of node state SemiCore(*) keeps.

    The defaults reproduce the paper's arithmetic: ``core`` values are
    bounded by ``kmax`` (4244 on Clueweb), so 16-bit entries suffice and
    SemiCore*'s ``core`` + ``cnt`` for 978M nodes is ~3.9 GB -- the
    "under 4.2 GB" headline.  This implementation uses 4-byte arrays for
    simplicity (pass ``bytes_per_value=4`` for its footprint).
    """
    per_node = (2 if with_cnt else 1) * bytes_per_value
    return num_nodes * per_node


def scale_factor(paper_stats, proxy_nodes):
    """How far a proxy is scaled down from the original dataset."""
    if proxy_nodes <= 0:
        return math.inf
    return paper_stats.nodes / proxy_nodes
