"""Node and edge sampling for the scalability studies (Section VI-C).

The paper varies ``|V|`` and ``|E|`` from 20% to 100%: *"When sampling
nodes, we keep the induced subgraph of the nodes, and when sampling edges,
we keep the incident nodes of the edges."*  Both samplers return
``(edges, num_nodes)`` with node ids compacted to ``0..n'-1`` preserving
the original relative order (so scan-order effects survive sampling).
"""

from __future__ import annotations

import random


def _compact(edges, kept_nodes):
    """Relabel ``kept_nodes`` (any iterable) to 0..n'-1 in sorted order."""
    ordered = sorted(kept_nodes)
    remap = {v: i for i, v in enumerate(ordered)}
    compacted = []
    for u, v in edges:
        a, b = remap[u], remap[v]
        compacted.append((a, b) if a < b else (b, a))
    return sorted(set(compacted)), len(ordered)


def sample_nodes(edges, num_nodes, fraction, seed=0):
    """Keep a random node subset and its induced subgraph."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1], got %r" % (fraction,))
    if fraction == 1:
        return sorted(set(edges)), num_nodes
    rng = random.Random(seed)
    keep_count = max(1, int(round(num_nodes * fraction)))
    kept = set(rng.sample(range(num_nodes), keep_count))
    induced = [(u, v) for u, v in edges if u in kept and v in kept]
    return _compact(induced, kept)


def sample_edges(edges, fraction, seed=0):
    """Keep a random edge subset and the nodes they touch."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1], got %r" % (fraction,))
    edges = sorted(set(edges))
    if fraction == 1:
        nodes = {u for u, _ in edges} | {v for _, v in edges}
        return _compact(edges, nodes)
    rng = random.Random(seed)
    keep_count = max(1, int(round(len(edges) * fraction)))
    kept_edges = rng.sample(edges, keep_count)
    nodes = {u for u, _ in kept_edges} | {v for _, v in kept_edges}
    return _compact(kept_edges, nodes)
