"""Deterministic serving workloads: zipfian query mix + update stream.

Benchmarks and examples need a repeatable "millions of users" traffic
shape.  Real query logs are heavily skewed -- a few hot entities absorb
most lookups -- so node and threshold choices follow a zipfian rank
distribution: rank ``r`` is drawn with probability proportional to
``1 / (r + 1) ** s``.  The skew is exactly what makes the service cache
earn its keep, and every stream is a pure function of its seed, so the
same workload can be replayed against cached/uncached services and
across engines to assert byte-identical answers.
"""

from __future__ import annotations

import bisect
import itertools
import random
import threading
import time

#: Default query mix: (kind, weight).  Point lookups dominate, set and
#: aggregate queries ride along, subgraph extraction is the rare
#: expensive tail (it is the only I/O-issuing query kind).
DEFAULT_MIX = (
    ("coreness", 0.50),
    ("coreness_many", 0.15),
    ("members", 0.15),
    ("top", 0.07),
    ("histogram", 0.05),
    ("degeneracy", 0.03),
    ("subgraph", 0.05),
)

DEFAULT_ZIPF_S = 1.1
#: Nodes per ``coreness_many`` batch query.
MANY_BATCH = 8


class ZipfianSampler:
    """Draw ranks ``0..n-1`` with probability ``∝ 1 / (rank + 1) ** s``."""

    def __init__(self, n, s=DEFAULT_ZIPF_S):
        if n < 1:
            raise ValueError("need at least one rank")
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng):
        """One rank, using ``rng`` (a :class:`random.Random`)."""
        return bisect.bisect_left(self._cumulative,
                                  rng.random() * self._total)


def generate_queries(num_nodes, kmax, count, *, seed=0, mix=DEFAULT_MIX,
                     zipf_s=DEFAULT_ZIPF_S, max_depth=None):
    """A deterministic list of ``count`` query tuples.

    Node-valued queries pick zipfian node ids (low ids are hot, matching
    the registry proxies whose planted cliques sit at low ids);
    threshold-valued queries pick zipfian *depths*, i.e. hot thresholds
    sit near ``kmax`` where the cores are small and cache-friendly.
    ``max_depth`` bounds how far below ``kmax`` the threshold queries
    reach: a serving workload asking for ``k``-cores near the degeneracy
    (leaderboards, dense-community lookups) never touches the
    whole-graph thresholds whose answers are a full scan wide.
    """
    rng = random.Random(seed)
    nodes = ZipfianSampler(num_nodes, zipf_s)
    depth_ranks = max(1, kmax)
    if max_depth is not None:
        depth_ranks = min(depth_ranks, max_depth)
    depths = ZipfianSampler(depth_ranks, zipf_s)
    kinds = [kind for kind, _ in mix]
    weights = [weight for _, weight in mix]
    queries = []
    for _ in range(count):
        kind = rng.choices(kinds, weights)[0]
        if kind == "coreness":
            queries.append(("coreness", nodes.sample(rng)))
        elif kind == "coreness_many":
            queries.append(("coreness_many",
                            tuple(nodes.sample(rng)
                                  for _ in range(MANY_BATCH))))
        elif kind in ("members", "subgraph"):
            queries.append((kind, max(1, kmax - depths.sample(rng))))
        elif kind == "top":
            queries.append(("top", 1 + depths.sample(rng)))
        elif kind == "histogram":
            queries.append(("histogram",))
        elif kind == "degeneracy":
            queries.append(("degeneracy",))
        else:
            raise ValueError("unknown query kind %r in mix" % (kind,))
    return queries


def generate_updates(edges, num_nodes, count, *, seed=0, insert_ratio=0.5):
    """A deterministic, always-applicable stream of edge events.

    ``edges`` is the graph's current undirected edge list; the generator
    tracks presence as it goes, so every emitted ``("-", u, v)`` deletes
    an existing edge and every ``("+", u, v)`` inserts a missing one --
    the stream replays cleanly against a service seeded from the same
    graph.
    """
    rng = random.Random(seed)
    present = sorted((u, v) if u < v else (v, u) for u, v in edges)
    present_set = set(present)
    events = []
    for _ in range(count):
        if present and rng.random() >= insert_ratio:
            index = rng.randrange(len(present))
            edge = present[index]
            present[index] = present[-1]
            present.pop()
            present_set.discard(edge)
            events.append(("-", edge[0], edge[1]))
        else:
            for _ in range(64):
                u = rng.randrange(num_nodes)
                v = rng.randrange(num_nodes)
                if u == v:
                    continue
                edge = (u, v) if u < v else (v, u)
                if edge not in present_set:
                    present.append(edge)
                    present_set.add(edge)
                    events.append(("+", edge[0], edge[1]))
                    break
    return events


def in_batches(events, batch_size):
    """Chunk an event stream into apply-ready batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    return [events[i:i + batch_size]
            for i in range(0, len(events), batch_size)]


def execute_query(service, query):
    """Dispatch one workload query tuple against a service."""
    kind = query[0]
    if kind == "coreness":
        return service.coreness(query[1])
    if kind == "coreness_many":
        return service.coreness_many(query[1])
    if kind == "members":
        return service.kcore_members(query[1])
    if kind == "subgraph":
        return service.kcore_subgraph(query[1])
    if kind == "top":
        return service.top_k(query[1])
    if kind == "histogram":
        return service.core_histogram()
    if kind == "degeneracy":
        return service.degeneracy()
    raise ValueError("unknown query kind %r" % (kind,))


def run_queries(service, queries):
    """Execute ``queries`` in order; returns ``(results, latencies)``.

    ``results`` is the per-query answer list (compare it across cache
    settings and engines -- it must be identical); ``latencies`` the
    per-query wall-clock seconds.
    """
    results = []
    latencies = []
    for query in queries:
        started = time.perf_counter()
        results.append(execute_query(service, query))
        latencies.append(time.perf_counter() - started)
    return results, latencies


def percentile(values, fraction):
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0.0
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(fraction * len(ranked)))
    return ranked[index]


def run_mixed_workload(service, queries, update_batches):
    """Interleave query blocks with update batches; return metrics.

    The queries are split into ``len(update_batches) + 1`` contiguous
    blocks with one update batch applied between consecutive blocks --
    the serving pattern the ISSUE's benchmark measures.  Returns a dict
    with the query results (for parity checks) and the serving metrics:
    queries/sec, p50/p99 latency, cache hit rate and read I/Os per 1k
    queries.
    """
    blocks = len(update_batches) + 1
    per_block = max(1, (len(queries) + blocks - 1) // blocks)
    io_before = service.io_stats.snapshot()
    hits_before = service.cache_stats.hits
    lookups_before = service.cache_stats.lookups
    results = []
    latencies = []
    update_seconds = 0.0
    update_read_ios = 0
    started = time.perf_counter()
    position = 0
    for index in range(blocks):
        block = queries[position:position + per_block]
        position += per_block
        block_results, block_latencies = run_queries(service, block)
        results.extend(block_results)
        latencies.extend(block_latencies)
        if index < len(update_batches):
            update_started = time.perf_counter()
            update_io_before = service.io_stats.snapshot()
            service.apply(update_batches[index])
            update_read_ios += service.io_stats.delta_since(
                update_io_before).read_ios
            update_seconds += time.perf_counter() - update_started
    elapsed = time.perf_counter() - started
    query_seconds = sum(latencies)
    io = service.io_stats.delta_since(io_before)
    query_read_ios = io.read_ios - update_read_ios
    lookups = service.cache_stats.lookups - lookups_before
    hits = service.cache_stats.hits - hits_before
    return {
        "results": results,
        "queries": len(results),
        "updates": sum(len(batch) for batch in update_batches),
        "elapsed_seconds": elapsed,
        "query_seconds": query_seconds,
        "update_seconds": update_seconds,
        "qps": len(results) / query_seconds if query_seconds else 0.0,
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "hit_rate": hits / lookups if lookups else 0.0,
        "read_ios": io.read_ios,
        "write_ios": io.write_ios,
        "read_ios_per_1k_queries": (1000.0 * query_read_ios / len(results)
                                    if results else 0.0),
        "epoch": service.epoch,
    }


def run_concurrent_workload(service, queries, update_batches, *,
                            reader_threads=4):
    """Race ``reader_threads`` reader threads against a writer.

    The queries are dealt round-robin to the reader threads; the calling
    thread is the writer, progress-paced so the swaps spread across the
    read stream: batch ``i`` applies once the readers have completed
    ``(i + 1) / (batches + 1)`` of all reads.  Every read runs inside its
    own :meth:`CoreService.read_view`, so its value, epoch and stats come
    from one pinned snapshot; the record also carries the service epoch
    sampled just before the pin (``epoch_lo``) and just after the release
    (``epoch_hi``) -- a linearizability-style window.  A read whose
    observed epoch falls outside its window is a torn read and counts in
    ``torn_reads`` (the service guarantees zero).

    Returns a metrics dict with the per-read ``records`` (feed them to
    :func:`verify_epoch_coherence`), latency percentiles including
    p99.9, the swap count, and the torn-read count.  A reader exception
    is re-raised here after the remaining threads drain.
    """
    if reader_threads < 1:
        raise ValueError("reader_threads must be positive")
    total = len(queries)
    shards = [queries[index::reader_threads]
              for index in range(reader_threads)]
    epoch_start = service.epoch
    progress = threading.Condition()
    completed = [0]
    records = []
    records_lock = threading.Lock()
    failures = []

    def reader(shard):
        local = []
        try:
            for query in shard:
                epoch_lo = service.epoch
                started = time.perf_counter()
                with service.read_view() as view:
                    value = execute_query(view, query)
                    epoch = view.epoch
                latency = time.perf_counter() - started
                local.append({
                    "query": query,
                    "value": value,
                    "epoch": epoch,
                    "latency": latency,
                    "epoch_lo": epoch_lo,
                    "epoch_hi": service.epoch,
                })
                with progress:
                    completed[0] += 1
                    progress.notify_all()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append(exc)
            with progress:
                progress.notify_all()
        finally:
            with records_lock:
                records.extend(local)

    threads = [threading.Thread(target=reader, args=(shard,), daemon=True)
               for shard in shards]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for index, batch in enumerate(update_batches):
        target = (index + 1) * total // (len(update_batches) + 1)
        with progress:
            progress.wait_for(
                lambda: completed[0] >= target or failures)
        if failures:
            break
        service.apply(batch)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]
    torn = sum(1 for record in records
               if not record["epoch_lo"] <= record["epoch"]
               <= record["epoch_hi"])
    latencies = [record["latency"] for record in records]
    return {
        "records": records,
        "reads": len(records),
        "reader_threads": reader_threads,
        "updates": sum(len(batch) for batch in update_batches),
        "swaps": service.epoch - epoch_start,
        "torn_reads": torn,
        "elapsed_seconds": elapsed,
        "qps": len(records) / elapsed if elapsed else 0.0,
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "p999_seconds": percentile(latencies, 0.999),
        "epoch": service.epoch,
    }


def verify_epoch_coherence(service_factory, update_batches, records):
    """Check every concurrent read against a straight-through replay.

    ``service_factory`` must rebuild the service in the state the
    records' epoch 0 refers to (same seed graph, same algorithm/engine);
    ``update_batches`` are the batches the writer applied while the
    records were collected.  The replay applies them one at a time and
    recomputes each distinct ``(epoch, query)`` pair the records
    mention, single-threaded -- the ground truth snapshot isolation
    promises.  Returns the list of mismatches (empty = every concurrent
    read returned exactly the value its epoch's index held).
    """
    by_epoch = {}
    for record in records:
        by_epoch.setdefault(record["epoch"], set()).add(record["query"])
    expected = {}
    service = service_factory()
    try:
        base = service.epoch
        for step in range(len(update_batches) + 1):
            if step:
                service.apply(update_batches[step - 1])
            epoch = base + step
            for query in sorted(by_epoch.get(epoch, ())):
                expected[(epoch, query)] = execute_query(service, query)
    finally:
        close = getattr(service, "close", None)
        if close is not None:
            close()
    mismatches = []
    for record in records:
        key = (record["epoch"], record["query"])
        if key not in expected:
            mismatches.append({
                "query": record["query"], "epoch": record["epoch"],
                "got": record["value"], "want": None,
                "reason": "epoch outside the replayed range",
            })
        elif expected[key] != record["value"]:
            mismatches.append({
                "query": record["query"], "epoch": record["epoch"],
                "got": record["value"], "want": expected[key],
                "reason": "value diverges from replay",
            })
    return mismatches
