"""Read-through LRU cache over :class:`CoreService` query results.

Keys are structured tuples whose first element names the query kind, so
the cache -- not the service -- owns the invalidation rule: every
applied batch bumps the index epoch and evicts *only* the entries the
batch could have changed.

What each query kind depends on
-------------------------------
``coreness``, ``members``, ``histogram``, ``degeneracy`` and ``top``
are pure functions of the ``core[]`` array; ``subgraph`` additionally
depends on the edge set (an insert between two deep nodes changes the
k-core *subgraph* even when no core number moves).  Hence per batch:

* nothing core-dependent is touched when no core number changed;
* ``("coreness", v)`` dies only for the nodes whose value changed;
* the global aggregates die whenever any value changed;
* ``("members", k)`` / ``("subgraph", k)`` die when their threshold is
  at most the *max touched coreness* -- the largest core value involved
  in the batch (old/new values of changed nodes, plus
  ``min(core(u), core(v))`` of each event edge, which is the deepest
  k-core whose subgraph contains that edge).  Thresholds above it are
  provably unaffected and survive.

Over-eviction is always safe (the service recomputes); under-eviction
would break the byte-identical cache-on/cache-off contract asserted in
``tests/test_service.py``.

Concurrency (PR 6)
------------------
The cache is shared between reader threads and the writer, so every
operation holds the internal :attr:`ServiceCache.lock`.  Entries are
tagged with the epoch their value was computed at, and invalidation
evicts an entry the moment a batch could change it -- therefore a
resident entry tagged ``e`` is valid for *every* epoch in
``[e, current]``.  A reader pinned to an older snapshot passes its
epoch to :meth:`ServiceCache.get`: entries tagged *newer* than the
pinned epoch are rejected (counted in ``stats.stale``), because they
may reflect state the reader's snapshot predates.  The service guards
the put side symmetrically: a value computed on a stale snapshot is
never inserted (see ``CoreService._cached``).
"""

from __future__ import annotations

import threading

from collections import OrderedDict

#: Query kinds whose value depends only on the full core[] array.
_AGGREGATE_KINDS = ("histogram", "degeneracy", "top")
#: Query kinds keyed by a k-core threshold.
_THRESHOLD_KINDS = ("members", "subgraph")

DEFAULT_CAPACITY = 4096


class CacheStats:
    """Hit/miss/eviction counters, surfaced next to the graph's IOStats."""

    __slots__ = ("hits", "misses", "evictions", "invalidations", "stale")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Probes that found an entry but rejected it because it was
        #: tagged with an epoch newer than the reader's snapshot (also
        #: counted in ``misses`` -- the reader recomputes).
        self.stale = 0

    @property
    def lookups(self):
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of probes served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self):
        """Plain-dict view for reports and manifests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stale": self.stale,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self):
        return ("CacheStats(hits=%d, misses=%d, evictions=%d, "
                "invalidations=%d)" % (self.hits, self.misses,
                                       self.evictions, self.invalidations))


class ServiceCache:
    """LRU cache with epoch-tagged entries and selective invalidation.

    ``capacity`` bounds the number of entries; 0 disables caching
    entirely (every probe is a miss and nothing is stored), which is how
    the benchmarks measure the uncached baseline.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 0:
            raise ValueError("capacity must be >= 0, got %r" % (capacity,))
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries = OrderedDict()
        #: Guards every cache operation; the service also takes it to
        #: make "check the snapshot is still current, then put" and
        #: "swap, then invalidate" mutually exclusive (an RLock so those
        #: composite sections can call the public methods).
        self.lock = threading.RLock()

    def __len__(self):
        with self.lock:
            return len(self._entries)

    def __contains__(self, key):
        with self.lock:
            return key in self._entries

    # -- read-through protocol ----------------------------------------------
    def get(self, key, max_epoch=None):
        """Probe for ``key``; returns ``(hit, value)`` and counts the probe.

        With ``max_epoch`` the probe only hits entries tagged at that
        epoch or earlier: a reader pinned to epoch ``e`` must never be
        served a value computed at a later epoch (resident entries are
        valid *forward* -- invalidation evicts them the moment a batch
        could change them -- but never backward).
        """
        with self.lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return False, None
            if max_epoch is not None and entry[1] > max_epoch:
                self.stats.misses += 1
                self.stats.stale += 1
                return False, None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True, entry[0]

    def put(self, key, value, epoch):
        """Store ``value`` computed at index ``epoch``, evicting LRU entries."""
        if self.capacity == 0:
            return
        with self.lock:
            self._entries[key] = (value, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def entry_epoch(self, key):
        """Index epoch a cached entry was computed at (None when absent)."""
        with self.lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[1]

    # -- invalidation -------------------------------------------------------
    def invalidate(self, changed_nodes=(), max_core_touched=0):
        """Evict the entries an applied batch could have changed.

        ``changed_nodes`` are the nodes whose core number changed;
        ``max_core_touched`` is the batch's max touched coreness (see the
        module docstring).  Returns the number of evicted entries.
        """
        changed = set(changed_nodes)
        doomed = []
        with self.lock:
            return self._invalidate_locked(changed, max_core_touched,
                                           doomed)

    def _invalidate_locked(self, changed, max_core_touched, doomed):
        for key in self._entries:
            kind = key[0]
            if kind == "coreness":
                if key[1] in changed:
                    doomed.append(key)
            elif kind in _AGGREGATE_KINDS:
                if changed:
                    doomed.append(key)
            elif kind == "members":
                if changed and key[1] <= max_core_touched:
                    doomed.append(key)
            elif kind == "subgraph":
                if key[1] <= max_core_touched:
                    doomed.append(key)
            else:
                # Unknown kinds get no selective rule: always evict.
                doomed.append(key)
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self):
        """Drop every entry (counted as invalidations)."""
        with self.lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def __repr__(self):
        return "ServiceCache(entries=%d, capacity=%d, hit_rate=%.2f)" % (
            len(self._entries), self.capacity, self.stats.hit_rate
        )
