"""The core-index serving subsystem.

Everything needed to *keep* a decomposition rather than just compute it:

* :class:`~repro.service.core_service.CoreService` -- lifecycle, read
  queries, batched updates, checkpointed restarts;
* :class:`~repro.service.snapshot.EpochSnapshot` /
  :class:`~repro.service.snapshot.SnapshotView` -- the immutable
  per-epoch read plane with refcounted retirement (snapshot-isolated
  concurrent serving);
* :class:`~repro.service.cache.ServiceCache` /
  :class:`~repro.service.cache.CacheStats` -- the read-through LRU with
  epoch-based invalidation;
* :class:`~repro.service.journal.EventJournal` -- the segmented
  write-ahead journal restarts replay from (checkpoint-anchored
  rotation + compaction keep its replay prefix bounded);
* :func:`~repro.service.scrub.scrub_directory` -- offline verification
  and repair of a data directory (``repro scrub``);
* :mod:`~repro.service.workload` -- deterministic zipfian workloads for
  benchmarks and examples.
"""

from repro.service.cache import CacheStats, ServiceCache
from repro.service.core_service import CoreService
from repro.service.journal import (
    DEFAULT_SEGMENT_EVENTS,
    EventJournal,
)
from repro.service.scrub import scrub_directory
from repro.service.snapshot import EpochSnapshot, SnapshotView
from repro.service.workload import (
    ZipfianSampler,
    execute_query,
    generate_queries,
    generate_updates,
    in_batches,
    run_concurrent_workload,
    run_mixed_workload,
    run_queries,
    verify_epoch_coherence,
)

__all__ = [
    "CoreService",
    "EpochSnapshot",
    "SnapshotView",
    "ServiceCache",
    "CacheStats",
    "EventJournal",
    "DEFAULT_SEGMENT_EVENTS",
    "scrub_directory",
    "ZipfianSampler",
    "generate_queries",
    "generate_updates",
    "in_batches",
    "execute_query",
    "run_queries",
    "run_mixed_workload",
    "run_concurrent_workload",
    "verify_epoch_coherence",
]
