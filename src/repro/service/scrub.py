"""Offline verification and repair of a service data directory.

:func:`scrub_directory` is the recovery tool behind ``repro scrub``: it
walks a :class:`~repro.service.core_service.CoreService` data directory
while the service is *down*, verifies every checksum the on-disk format
carries (manifest ``crc32``, checkpoint payload CRC, delta CRC, every
journal record CRC), and repairs what can be repaired without losing
acknowledged state:

* stray ``.tmp`` files from a crashed checkpoint or rotation are
  removed;
* a damaged or missing ``manifest.json`` is restored from the newest
  intact epoch-stamped duplicate (``manifest.<epoch>.json``) whose
  checkpoint artifacts still verify;
* a torn tail of the *active* journal segment (the crash-mid-append
  signature) is truncated back to the last complete batch -- exactly
  the repair the journal itself performs on open, done here explicitly
  and reported;
* a damaged *sealed* segment whose events are all covered by the
  checkpoint watermark is unlinked together with every earlier segment
  (their events are accounted for by the checkpoint; removing a middle
  segment alone would break the base-offset chain).

Damage that cannot be repaired without dropping acknowledged events --
checksum corruption inside the active segment ahead of complete
batches, or a damaged sealed segment the watermark does not cover --
is *lossy*: it is only repaired under ``force=True`` (truncation at
the damage point), and always itemized in the report either way.

The report is a plain dict (JSON-ready for ``repro scrub --json``):
``openable`` is the storage-side verdict of whether
:meth:`CoreService.open` would get past every consistency check, with
``issues`` (location-bearing, one per problem found) and ``actions``
(one per repair performed).
"""

from __future__ import annotations

import os
import shutil
import zlib

from repro.storage.state import load_checkpoint
from repro.errors import CorruptStorageError
from repro.service.core_service import (
    CHECKPOINT_NAME,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    _MANIFEST_COPY_RE,
    _load_manifest,
    _read_delta_file,
)
from repro.service.journal import (
    LEGACY_NAME,
    RECORD_SIZE,
    _CRC,
    _KIND_BATCH,
    _KIND_QUARANTINE,
    _KIND_TO_OP,
    _LEGACY_HEADER,
    _LEGACY_MAGIC,
    _LEGACY_VERSION,
    _PAYLOAD,
    _SEGMENT_HEADER,
    _SEGMENT_MAGIC,
    _SEGMENT_RE,
    _SEGMENT_VERSION,
    fsync_path,
)

__all__ = ["scrub_directory"]


# ----------------------------------------------------------------------
# read-only diagnosis
# ----------------------------------------------------------------------

def _scan_segment_file(path, seq, legacy):
    """Read-only scan of one segment file.

    Returns a dict with the segment's ``base`` offset, the number of
    ``events`` in complete batches, ``good_pos`` (byte offset one past
    the last complete batch -- the truncation point), and ``damage``
    (None, or ``{"problem", "offset", "torn"}`` where ``torn`` marks
    the crash-mid-append signature that is always safe to truncate).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    info = {"name": os.path.basename(path), "path": path, "seq": seq,
            "base": None, "events": 0, "good_pos": 0,
            "size": len(blob), "damage": None, "legacy": legacy}
    header_size = _LEGACY_HEADER.size if legacy else _SEGMENT_HEADER.size
    if not blob:
        # Crash between create and header write: the journal
        # re-initializes an empty *active* segment in place.
        return info
    if len(blob) < header_size:
        info["damage"] = {"problem": "header truncated", "offset": 0,
                          "torn": True}
        return info
    if legacy:
        magic, version = _LEGACY_HEADER.unpack(blob[:header_size])
        header_ok = magic == _LEGACY_MAGIC and version == _LEGACY_VERSION
        info["base"] = 0
    else:
        magic, version, file_seq, base = _SEGMENT_HEADER.unpack(
            blob[:header_size])
        header_ok = (magic == _SEGMENT_MAGIC
                     and version == _SEGMENT_VERSION and file_seq == seq)
        if header_ok:
            info["base"] = base
    if not header_ok:
        info["damage"] = {"problem": "bad header", "offset": 0,
                          "torn": False}
        return info

    def record_at(pos):
        record = blob[pos:pos + RECORD_SIZE]
        if len(record) < RECORD_SIZE:
            return "torn", None
        payload, crc = record[:_PAYLOAD.size], record[_PAYLOAD.size:]
        if _CRC.unpack(crc)[0] != zlib.crc32(payload) & 0xFFFFFFFF:
            return "corrupt", None
        return None, _PAYLOAD.unpack(payload)

    pos = header_size
    info["good_pos"] = pos
    while pos < len(blob):
        state, head = record_at(pos)
        if state is not None:
            info["damage"] = {
                "problem": ("torn record" if state == "torn"
                            else "record fails its checksum"),
                "offset": pos, "torn": state == "torn"}
            break
        kind, count, _, batch = head
        if kind == _KIND_QUARANTINE:
            pos += RECORD_SIZE
            info["good_pos"] = pos
            continue
        if kind != _KIND_BATCH:
            info["damage"] = {"problem": "record is not a batch header "
                                         "(kind %d)" % kind,
                              "offset": pos, "torn": False}
            break
        body = pos + RECORD_SIZE
        bad = None
        for _ in range(count):
            state, record = record_at(body)
            if state is not None:
                bad = {"problem": ("torn batch" if state == "torn"
                                   else "record fails its checksum"),
                       "offset": body, "torn": state == "torn"}
                break
            event_kind, _, _, event_batch = record
            if event_kind not in _KIND_TO_OP or event_batch != batch:
                bad = {"problem": "record does not belong to batch %d"
                                  % batch,
                       "offset": body, "torn": False}
                break
            body += RECORD_SIZE
        if bad is not None:
            info["damage"] = bad
            break
        pos = body
        info["good_pos"] = pos
        info["events"] += count
    return info


def _list_segments(data_dir):
    """Journal segment files under ``data_dir``, oldest first."""
    found = []
    legacy = os.path.join(data_dir, LEGACY_NAME)
    if os.path.exists(legacy):
        found.append((0, legacy, True))
    numbered = []
    for name in os.listdir(data_dir):
        match = _SEGMENT_RE.match(name)
        if match:
            numbered.append((int(match.group(1)),
                             os.path.join(data_dir, name), False))
    found.extend(sorted(numbered))
    return found


def _manifest_copies(data_dir):
    """Epoch-stamped manifest duplicates, newest epoch first."""
    copies = []
    for name in os.listdir(data_dir):
        match = _MANIFEST_COPY_RE.match(name)
        if match:
            copies.append((int(match.group(1)),
                           os.path.join(data_dir, name)))
    return sorted(copies, reverse=True)


def _check_artifacts(data_dir, manifest, issues):
    """Verify the checkpoint artifacts a manifest points at.

    Appends location-bearing issues; returns True when the state file
    (and, for v2 manifests, the delta file) pass their checksums.
    """
    ok = True
    state_name = manifest.get("checkpoint", CHECKPOINT_NAME)
    state_path = os.path.join(data_dir, state_name)
    try:
        load_checkpoint(state_path)
    except FileNotFoundError:
        issues.append({"file": state_name,
                       "problem": "checkpoint file is missing"})
        ok = False
    except CorruptStorageError as exc:
        issues.append(_issue_from(exc, state_name))
        ok = False
    if manifest.get("version") == MANIFEST_VERSION and "delta" in manifest:
        delta_name = manifest["delta"]
        try:
            _read_delta_file(os.path.join(data_dir, delta_name))
        except CorruptStorageError as exc:
            issues.append(_issue_from(exc, delta_name))
            ok = False
    return ok


def _issue_from(exc, fallback_file):
    issue = {"file": os.path.basename(getattr(exc, "path", None)
                                      or fallback_file),
             "problem": str(exc)}
    if getattr(exc, "segment", None) is not None:
        issue["segment"] = exc.segment
    if getattr(exc, "offset", None) is not None:
        issue["offset"] = exc.offset
    return issue


def _diagnose(data_dir):
    """One read-only walk: manifest, artifacts, segments, verdict."""
    state = {"issues": [], "manifest": None, "manifest_source": None,
             "segments": [], "openable": False, "tmp_strays": []}
    issues = state["issues"]
    manifest_path = os.path.join(data_dir, MANIFEST_NAME)
    try:
        manifest = _load_manifest(manifest_path)
    except FileNotFoundError:
        manifest = None
        issues.append({"file": MANIFEST_NAME,
                       "problem": "manifest is missing"})
    except CorruptStorageError as exc:
        manifest = None
        issues.append(_issue_from(exc, MANIFEST_NAME))
    if manifest is not None:
        if manifest.get("version") not in (1, MANIFEST_VERSION):
            issues.append({"file": MANIFEST_NAME,
                           "problem": "unsupported manifest version %r"
                                      % (manifest.get("version"),)})
            manifest = None
    artifacts_ok = False
    if manifest is not None:
        state["manifest"] = manifest
        state["manifest_source"] = MANIFEST_NAME
        artifacts_ok = _check_artifacts(data_dir, manifest, issues)

    for name in sorted(os.listdir(data_dir)):
        if name.endswith(".tmp"):
            state["tmp_strays"].append(name)

    watermark = (int(manifest["events_applied"])
                 if manifest is not None else None)
    segments = []
    for seq, path, legacy in _list_segments(data_dir):
        segments.append(_scan_segment_file(path, seq, legacy))
    state["segments"] = segments
    journal_ok = True
    previous_end = None
    for index, info in enumerate(segments):
        is_active = index == len(segments) - 1
        if info["damage"] is not None:
            journal_ok = False
            issue = {"file": info["name"], "segment": info["seq"],
                     "offset": info["damage"]["offset"],
                     "problem": info["damage"]["problem"]
                                + ("" if is_active
                                   else " (sealed segment)")}
            issues.append(issue)
            previous_end = None
            continue
        if info["base"] is None:
            # 0-byte file: legitimate only as the active segment.
            if not is_active:
                journal_ok = False
                issues.append({"file": info["name"],
                               "segment": info["seq"],
                               "problem": "sealed segment is empty"})
            previous_end = None
            continue
        if previous_end is not None and info["base"] != previous_end:
            journal_ok = False
            issues.append({"file": info["name"], "segment": info["seq"],
                           "problem": "segment starts at event %d but "
                                      "its predecessor ends at %d"
                                      % (info["base"], previous_end)})
        previous_end = info["base"] + info["events"]

    if manifest is not None and artifacts_ok and journal_ok and segments:
        intact = [s for s in segments if s["base"] is not None]
        total = (intact[-1]["base"] + intact[-1]["events"]
                 if intact else 0)
        first = intact[0]["base"] if intact else 0
        if watermark > total:
            issues.append({"file": MANIFEST_NAME,
                           "problem": "journal holds %d events but the "
                                      "checkpoint covers %d"
                                      % (total, watermark)})
        elif manifest.get("version") == MANIFEST_VERSION \
                and watermark < first:
            issues.append({"file": MANIFEST_NAME,
                           "problem": "journal was compacted past the "
                                      "checkpoint (first retained event "
                                      "%d, watermark %d)"
                                      % (first, watermark)})
        else:
            state["openable"] = True
    elif manifest is not None and artifacts_ok and journal_ok:
        # No segment files at all: open() would create a fresh journal,
        # then reject any nonzero watermark against its 0 events.
        state["openable"] = watermark == 0
    return state


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------

def _active_base(segments, index, manifest, watermark):
    """Best-evidence base offset for an active segment whose own header
    is unreadable: the predecessor's end, the manifest's journal
    clause, or the checkpoint watermark (post-v2 every checkpoint
    rotates, so a tail-less active segment starts at the watermark).
    Returns None when no source is available."""
    info = segments[index]
    if info["legacy"]:
        return 0
    if index > 0:
        prev = segments[index - 1]
        if prev["damage"] is None and prev["base"] is not None:
            return prev["base"] + prev["events"]
    clause = (manifest or {}).get("journal") or {}
    for entry in clause.get("segments") or []:
        if entry.get("seq") == info["seq"] \
                and entry.get("base_events") is not None:
            return int(entry["base_events"])
    return watermark


def _repair(data_dir, diagnosis, actions, *, force):
    """Apply every repair the diagnosis justifies, recording actions."""
    for name in diagnosis["tmp_strays"]:
        os.unlink(os.path.join(data_dir, name))
        actions.append("removed stray temp file %s" % name)

    manifest = diagnosis["manifest"]
    manifest_ok = (manifest is not None
                   and not any(issue["file"] == MANIFEST_NAME
                               or issue["file"] == manifest.get(
                                   "checkpoint", CHECKPOINT_NAME)
                               or issue["file"] == manifest.get("delta")
                               for issue in diagnosis["issues"]))
    if not manifest_ok:
        for epoch, copy_path in _manifest_copies(data_dir):
            try:
                candidate = _load_manifest(copy_path)
            except (FileNotFoundError, CorruptStorageError):
                continue
            if not _check_artifacts(data_dir, candidate, []):
                continue
            target = os.path.join(data_dir, MANIFEST_NAME)
            shutil.copyfile(copy_path, target + ".tmp")
            fsync_path(target + ".tmp")
            os.replace(target + ".tmp", target)
            fsync_path(data_dir)
            manifest = candidate
            actions.append("restored %s from %s (epoch %d)"
                           % (MANIFEST_NAME, os.path.basename(copy_path),
                              epoch))
            break

    watermark = (int(manifest["events_applied"])
                 if manifest is not None else None)
    segments = diagnosis["segments"]
    for index, info in enumerate(segments):
        if info["damage"] is None:
            continue
        is_active = index == len(segments) - 1
        damage = info["damage"]
        if is_active:
            lossy = not damage["torn"]
            if lossy and not force:
                actions.append(
                    "left %s unrepaired: truncating at byte %d would "
                    "drop acknowledged events (pass force to allow)"
                    % (info["name"], damage["offset"]))
                continue
            header_size = (_LEGACY_HEADER.size if info["legacy"]
                           else _SEGMENT_HEADER.size)
            if info["good_pos"] < header_size:
                # The damage is inside the header itself: truncating
                # would erase the segment's base offset and break the
                # watermark check.  Rebuild an empty header instead.
                base = _active_base(segments, index, manifest, watermark)
                if base is None:
                    actions.append(
                        "left %s unrepaired: cannot determine the "
                        "segment's base offset to rebuild its header"
                        % info["name"])
                    continue
                with open(info["path"], "r+b") as handle:
                    handle.seek(0)
                    if info["legacy"]:
                        handle.write(_LEGACY_HEADER.pack(
                            _LEGACY_MAGIC, _LEGACY_VERSION))
                    else:
                        handle.write(_SEGMENT_HEADER.pack(
                            _SEGMENT_MAGIC, _SEGMENT_VERSION,
                            info["seq"], base))
                    handle.truncate(header_size)
                    handle.flush()
                    os.fsync(handle.fileno())
                fsync_path(data_dir)
                actions.append(
                    "rebuilt %s header (empty active segment at "
                    "event %d)" % (info["name"], base))
                continue
            with open(info["path"], "r+b") as handle:
                handle.truncate(info["good_pos"])
                handle.flush()
                os.fsync(handle.fileno())
            actions.append(
                "truncated %s %s tail at byte %d (kept %d events)"
                % (info["name"], "torn" if damage["torn"] else "corrupt",
                   info["good_pos"], info["events"]))
            continue
        # Sealed segment.  Removable only when the watermark covers it
        # entirely -- proven by the successor's base offset -- and then
        # only together with every earlier segment (a gap would break
        # the base-offset chain).
        successor = segments[index + 1] if index + 1 < len(segments) \
            else None
        covered = (watermark is not None and successor is not None
                   and successor["base"] is not None
                   and successor["base"] <= watermark)
        if covered:
            for earlier in segments[:index + 1]:
                if os.path.exists(earlier["path"]):
                    os.unlink(earlier["path"])
                    actions.append(
                        "unlinked %s (events covered by the checkpoint "
                        "watermark %d)" % (earlier["name"], watermark))
            fsync_path(data_dir)
        elif (force and watermark is not None
              and info["base"] is not None
              and info["base"] >= watermark and not info["legacy"]):
            # Lossy: everything from this segment's first event on is
            # dropped.  The checkpoint still covers the history up to
            # ``base`` (base >= watermark), so the directory reopens at
            # the watermark -- acknowledged events past ``base`` are
            # lost, which is exactly what force signs off on.
            for later in segments[index + 1:]:
                if os.path.exists(later["path"]):
                    os.unlink(later["path"])
                    actions.append("unlinked %s (past the truncation "
                                   "point)" % later["name"])
            with open(info["path"], "r+b") as handle:
                handle.seek(0)
                handle.write(_SEGMENT_HEADER.pack(
                    _SEGMENT_MAGIC, _SEGMENT_VERSION, info["seq"],
                    info["base"]))
                handle.truncate(_SEGMENT_HEADER.size)
                handle.flush()
                os.fsync(handle.fileno())
            fsync_path(data_dir)
            actions.append(
                "reset %s to an empty segment at event %d (dropped all "
                "events from %d on)"
                % (info["name"], info["base"], info["base"]))
            break
        else:
            actions.append(
                "left %s unrepaired: damaged sealed segment is not "
                "covered by the checkpoint watermark%s"
                % (info["name"],
                   "" if force else " (and force is not set)"))
    return actions


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def scrub_directory(data_dir, *, repair=True, force=False):
    """Verify (and by default repair) a service data directory.

    Returns the machine-readable report described in the module
    docstring.  With ``repair=False`` nothing on disk is touched -- the
    report is a pure diagnosis.  ``force=True`` additionally allows
    lossy repairs (truncating acknowledged events at a checksum-damage
    point in the active segment).
    """
    data_dir = os.fspath(data_dir)
    if not os.path.isdir(data_dir):
        return {"data_dir": data_dir, "openable": False,
                "repaired": False, "actions": [],
                "issues": [{"file": data_dir,
                            "problem": "not a directory"}],
                "manifest": None, "segments": []}
    diagnosis = _diagnose(data_dir)
    actions = []
    if repair and (not diagnosis["openable"] or diagnosis["tmp_strays"]):
        _repair(data_dir, diagnosis, actions, force=force)
        final = _diagnose(data_dir)
    else:
        final = diagnosis
    manifest = final["manifest"]
    report = {
        "data_dir": data_dir,
        "openable": final["openable"],
        "repaired": bool(actions),
        "actions": actions,
        # Issues of the *initial* walk: what the scrub found, whether
        # or not it could repair it.
        "issues": diagnosis["issues"],
        "remaining_issues": final["issues"] if actions else
                            diagnosis["issues"],
        "manifest": None if manifest is None else {
            "epoch": manifest.get("epoch"),
            "events_applied": manifest.get("events_applied"),
            "version": manifest.get("version"),
            "checkpoint": manifest.get("checkpoint"),
            "delta": manifest.get("delta"),
            "quarantined_batches": manifest.get("quarantined_batches",
                                                []),
        },
        "segments": [{"name": info["name"], "seq": info["seq"],
                      "base": info["base"], "events": info["events"],
                      "size": info["size"],
                      "damage": info["damage"]}
                     for info in final["segments"]],
    }
    return report
