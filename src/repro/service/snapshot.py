"""Immutable per-epoch snapshots: the read plane of the service.

Snapshot isolation splits :class:`~repro.service.core_service.CoreService`
into two planes.  The *write plane* -- the :class:`CoreMaintainer`, its
``core``/``cnt`` arrays and the mutable :class:`DynamicGraph` -- is
private to ``apply()``; no read ever touches it.  The *read plane* is an
:class:`EpochSnapshot`: a frozen ``core[]`` copy, a frozen per-node
adjacency (the rows the ``subgraph`` query walks) and the coherent stats
triple of one epoch.  ``apply()`` builds the next epoch's snapshot from
the private state and publishes it with a single pointer swap, so a
threaded front end keeps answering under write load with no torn reads.

Three properties make this cheap and safe:

* **structural sharing** -- :meth:`EpochSnapshot.advance` copies the row
  *list* (``n`` pointers) but re-reads only the adjacency rows the batch
  touched (its event endpoints); every untouched row object is shared
  with the predecessor snapshot.  The cores array is copied outright
  (``O(n)``, the same cost ``apply()`` already pays per batch).
* **refcounted retirement** -- readers pin a snapshot with
  :meth:`acquire` before their first read and :meth:`release` it after
  the last one.  Publishing retires the predecessor; its buffers are
  dropped only when the last in-flight reader releases, so a reader
  pinned across a swap finishes on its own epoch, never on a mix.
* **the CSR fast path** -- :meth:`csr` lazily materializes the frozen
  rows as a :class:`~repro.storage.csr.CSRGraph` (plus an int32 view of
  the cores), the same batch substrate the vectorized engines compute
  on; ``subgraph`` extraction filters whole adjacency slices at once
  when numpy is available.  The build is per-snapshot, thread-safe and
  charged no I/O: the rows were already paid for when the snapshot was
  built from the (I/O-counted) graph.

The snapshot lifecycle is a tiny state machine::

    BUILDING --publish--> CURRENT --swap--> RETIRED --last release--> DROPPED

``BUILDING`` happens on the writer thread only; ``CURRENT`` is the one
pointer readers pin; a ``RETIRED`` snapshot serves only the readers
already pinned to it; ``DROPPED`` frees the buffers.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from repro.core.kcore import degeneracy

try:  # soft dependency, exactly like repro.storage.csr
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]


class EpochSnapshot:
    """One epoch's frozen, refcounted read state.

    Instances are immutable once published: ``cores`` and the adjacency
    rows must never be mutated (rows are shared across epochs).  The
    refcount protocol is ``acquire()`` / ``release()`` around reads and
    ``retire()`` by the publisher; ``on_drop`` (when set) fires exactly
    once, when a retired snapshot's last reader releases it.
    """

    __slots__ = ("epoch", "cores", "kmax", "stats", "num_nodes", "_rows",
                 "_refs", "_retired", "_dropped", "_lock", "_csr",
                 "_cores_np", "on_drop")

    #: Fires once, when a retired snapshot's last reader releases it.
    on_drop: Callable[["EpochSnapshot"], None] | None

    def __init__(self, epoch: int, cores: Sequence[int],
                 rows: list[Sequence[int]],
                 stats: dict[str, Any]) -> None:
        self.epoch = epoch
        self.cores = cores
        self.num_nodes = len(cores)
        self.kmax = degeneracy(cores)
        stats = dict(stats)
        stats["epoch"] = epoch
        stats["kmax"] = self.kmax
        stats["num_nodes"] = self.num_nodes
        self.stats = stats
        self._rows: Any = rows
        self._refs = 0
        self._retired = False
        self._dropped = False
        self._lock = threading.Lock()
        self._csr: Any = None
        self._cores_np: Any = None
        self.on_drop = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Any, cores: Sequence[int], *, epoch: int,
              events_applied: int) -> "EpochSnapshot":
        """Materialize a full snapshot of ``graph`` + ``cores``.

        One sequential adjacency scan, charged through whatever I/O
        accounting ``graph`` has -- the same figure any full-scan pass
        pays.  Used once per service lifetime (seeding / open); every
        later epoch advances incrementally.
        """
        from array import array

        rows = [nbrs for _, nbrs in graph.iter_adjacency()]
        return cls(epoch, array("i", cores), rows,
                   cls._graph_stats(graph, events_applied))

    def advance(self, graph: Any, cores: Sequence[int], *, epoch: int,
                events_applied: int,
                touched: Iterable[int]) -> "EpochSnapshot":
        """The next epoch's snapshot, sharing every untouched row.

        ``touched`` are the nodes whose adjacency the batch changed (its
        event endpoints); only their rows are re-read from the graph --
        per-node reads, I/O-counted as always.  Core numbers may have
        changed anywhere, so the cores array is copied in full.
        """
        from array import array

        rows = list(self._rows)
        for v in sorted(touched):
            rows[v] = graph.neighbors(v)
        return type(self)(epoch, array("i", cores), rows,
                          self._graph_stats(graph, events_applied))

    @staticmethod
    def _graph_stats(graph: Any, events_applied: int) -> dict[str, Any]:
        return {
            "events_applied": events_applied,
            "num_edges": graph.num_edges,
        }

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> Sequence[int]:
        """Frozen adjacency row of node ``v`` (do not mutate)."""
        return self._rows[v]

    def csr(self) -> Any:
        """The snapshot's CSR artifact (None when numpy is missing).

        Built lazily, once, under the snapshot lock -- concurrent
        readers share one :class:`CSRGraph` over the frozen rows.
        """
        if _np is None:
            return None
        with self._lock:
            if self._csr is None:
                from repro.storage.csr import CSRGraph

                rows = self._rows
                self._csr = CSRGraph.from_rows(
                    range(self.num_nodes), self.num_nodes,
                    lambda v: rows[v])
            return self._csr

    def cores_np(self) -> Any:
        """The frozen cores as an int32 numpy view (None without numpy)."""
        if _np is None:
            return None
        with self._lock:
            if self._cores_np is None:
                self._cores_np = _np.frombuffer(self.cores,
                                                dtype=_np.int32)
            return self._cores_np

    # ------------------------------------------------------------------
    # refcount protocol
    # ------------------------------------------------------------------
    def acquire(self) -> "EpochSnapshot":
        """Pin the snapshot for reading; pairs with :meth:`release`."""
        with self._lock:
            if self._dropped:
                raise RuntimeError(
                    "snapshot of epoch %d was already dropped" % self.epoch)
            self._refs += 1
        return self

    def release(self) -> None:
        """Unpin; a retired snapshot drops on its last release."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError(
                    "unbalanced release of epoch %d snapshot" % self.epoch)
            self._refs -= 1
            drop = self._retired and self._refs == 0
        if drop:
            self._drop()

    def retire(self) -> None:
        """Mark superseded; drops now unless readers are still pinned."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            drop = self._refs == 0
        if drop:
            self._drop()

    def _drop(self) -> None:
        """Free the buffers; fires ``on_drop`` exactly once."""
        self._dropped = True
        self._rows = None
        self._csr = None
        callback = self.on_drop
        if callback is not None:
            self.on_drop = None
            callback(self)

    @property
    def refcount(self) -> int:
        """Number of in-flight pins (diagnostics)."""
        return self._refs

    @property
    def retired(self) -> bool:
        """True once a newer epoch was published over this one."""
        return self._retired

    @property
    def dropped(self) -> bool:
        """True once retired with no readers left (buffers freed)."""
        return self._dropped

    def __repr__(self) -> str:
        state = ("dropped" if self._dropped
                 else "retired" if self._retired else "current")
        return "EpochSnapshot(epoch=%d, kmax=%d, refs=%d, %s)" % (
            self.epoch, self.kmax, self._refs, state)


class SnapshotView:
    """The read API of a :class:`CoreService`, pinned to one epoch.

    Obtained from :meth:`CoreService.read_view`; every query answered
    through the view -- and the ``epoch`` / ``stats`` it reports -- comes
    from the same snapshot, however many swaps happen meanwhile.  Use as
    a context manager (or call :meth:`close`) so the pinned snapshot can
    retire; queries after close raise.
    """

    __slots__ = ("_service", "_snapshot", "_closed")

    def __init__(self, service: Any, snapshot: EpochSnapshot) -> None:
        self._service = service
        self._snapshot = snapshot
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release the pinned snapshot (idempotent)."""
        if not self._closed:
            self._closed = True
            self._snapshot.release()

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False

    # -- coherent metadata --------------------------------------------------
    @property
    def epoch(self) -> int:
        """The pinned epoch."""
        return self._snapshot.epoch

    @property
    def snapshot(self) -> EpochSnapshot:
        """The pinned :class:`EpochSnapshot` (diagnostics)."""
        return self._snapshot

    @property
    def stats(self) -> dict[str, Any]:
        """The pinned epoch's coherent stats triple (a copy)."""
        return dict(self._snapshot.stats)

    # -- the read API, bound to the pinned epoch ----------------------------
    def _snap(self) -> EpochSnapshot:
        if self._closed:
            raise RuntimeError("read view was closed")
        return self._snapshot

    def coreness(self, v: int) -> int:
        return self._service._coreness(self._snap(), v)

    def coreness_many(self, nodes: Iterable[int]) -> list[int]:
        return self._service._coreness_many(self._snap(), nodes)

    def kcore_members(self, k: int) -> list[int]:
        return self._service._kcore_members(self._snap(), k)

    def kcore_subgraph(self, k: int) -> Any:
        return self._service._kcore_subgraph(self._snap(), k)

    def core_histogram(self) -> dict[int, int]:
        return self._service._core_histogram(self._snap())

    def top_k(self, k: int) -> list[tuple[int, int]]:
        return self._service._top_k(self._snap(), k)

    def degeneracy(self) -> int:
        return self._service._degeneracy(self._snap())

    def __repr__(self) -> str:
        return "SnapshotView(epoch=%d, closed=%s)" % (
            self._snapshot.epoch, self._closed)
