"""The core-index serving subsystem.

:class:`CoreService` is the long-lived object the ROADMAP's north star
asks for: it owns a :class:`~repro.storage.dynamic.DynamicGraph` plus a
maintained ``core[]``/``cnt[]`` index and serves read queries while
absorbing an edge-update stream.  The three moving parts:

* **read path** -- every query is answered from the *published*
  :class:`~repro.service.snapshot.EpochSnapshot` (a frozen ``core[]``
  copy plus frozen adjacency rows), through a read-through
  :class:`~repro.service.cache.ServiceCache` whose probes are gated by
  the reader's pinned epoch.  Reads never touch the mutable maintainer
  state, so any number of threads can query while a batch applies;
  :meth:`read_view` pins one epoch across a whole sequence of reads.
  Results are byte-identical with the cache on or off, and across
  execution engines.
* **write path** -- :meth:`apply` journals a batch of ``("+"|"-", u, v)``
  events (write-ahead), routes it through the maintenance algorithms of
  Section V (``engine=`` respected end-to-end) against the *private*
  next-epoch state, builds the next snapshot (sharing every untouched
  adjacency row), and publishes it with a single atomic epoch-pointer
  swap -- only then is the epoch visible and are the affected cache
  entries evicted.  The superseded snapshot retires once its last
  in-flight reader releases it.
* **durability** -- every ``checkpoint_interval`` batches the service
  checkpoints the ``core``/``cnt`` arrays
  (:mod:`repro.storage.state`) *plus* the net edge delta
  of the graph against its seed tables, rotates the segmented journal
  (:mod:`repro.service.journal`) and writes a manifest recording the
  event watermark the pair is valid at; sealed journal segments fully
  covered by the watermark are then compacted away.  :meth:`open`
  restarts bounded: it rebuilds the graph from the seed tables plus
  the checkpointed delta (no event replay), installs the checkpointed
  index, and streams only the journal *tail* past the watermark
  through the maintenance algorithms -- reproducing the
  straight-through state exactly (``tests/test_service_recovery.py``
  kills a service mid-batch, and mid-checkpoint, to prove it).  A data
  directory written by the v1 single-file-journal code still opens
  (full prefix replay, as before) and is migrated to the segmented
  layout by its first checkpoint.
"""

from __future__ import annotations

import heapq
import json
import os
import re
import struct
import threading
import time
import zlib
from array import array

from repro.bench.harness import run_decomposition
from repro.core.kcore import core_histogram, k_core_nodes
from repro.storage.state import load_checkpoint, save_checkpoint
from repro.core.maintenance.maintainer import CoreMaintainer
from repro.errors import (
    BatchQuarantinedError,
    CorruptStorageError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    ReproError,
    ServiceDegradedError,
    StorageError,
)
from repro.obs.trace import span
from repro.service.cache import DEFAULT_CAPACITY, ServiceCache
from repro.service.journal import (
    DEFAULT_SEGMENT_EVENTS,
    EventJournal,
    fsync_path as _fsync_path,
)
from repro.service.snapshot import EpochSnapshot, SnapshotView
from repro.storage.dynamic import DEFAULT_BUFFER_CAPACITY, DynamicGraph
from repro.storage.graphstore import GraphStorage

MANIFEST_NAME = "manifest.json"
#: v1 fixed file names (still read when resuming a v1 data directory).
CHECKPOINT_NAME = "state.ckpt"
JOURNAL_NAME = "journal.log"
MANIFEST_VERSION = 2

#: Batches applied between automatic checkpoints (None disables them).
DEFAULT_CHECKPOINT_INTERVAL = 16

#: Attempts per batch (1 + retries) before it is quarantined, and the
#: base of the exponential backoff slept between attempts.
DEFAULT_APPLY_RETRIES = 2
DEFAULT_RETRY_BACKOFF = 0.01

#: Epoch-stamped duplicates of the manifest pointer, written next to it
#: so ``repro scrub`` can restore a damaged ``manifest.json``.
_MANIFEST_COPY_RE = re.compile(r"^manifest\.(\d+)\.json$")

#: Net edge-delta file: magic, version, pair count; then one
#: ``(kind, u, v)`` record per edge differing from the seed tables,
#: sorted, followed by a CRC32 of the record bytes.
_DELTA_MAGIC = b"RPRDELT1"
_DELTA_VERSION = 1
_DELTA_HEADER = struct.Struct("<8sIQ4x")
_DELTA_RECORD = struct.Struct("<BII")
_DELTA_CRC = struct.Struct("<I")
_DELTA_OPS = {"+": 0, "-": 1}
_DELTA_KINDS = {0: "+", 1: "-"}


def _checkpoint_file(epoch):
    """Checkpoint file name of ``epoch`` (the manifest points at one)."""
    return "state.%d.ckpt" % epoch


def _delta_file(epoch):
    """Edge-delta file name of ``epoch``."""
    return "graph.%d.delta" % epoch


def _manifest_copy_file(epoch):
    """Name of the manifest duplicate stamped with ``epoch``."""
    return "manifest.%d.json" % epoch


def _manifest_body(manifest):
    """Canonical serialization the manifest checksum covers.

    The ``crc32`` field itself is excluded, so the checksum is additive:
    manifests written before it existed verify as unprotected, and the
    bytes on disk are exactly ``body`` plus the field.
    """
    data = {key: value for key, value in manifest.items()
            if key != "crc32"}
    return json.dumps(data, indent=2, sort_keys=True)


def _load_manifest(path):
    """Read and checksum-verify a service manifest.

    Shared between :meth:`CoreService.open` and ``repro scrub``.
    Propagates :class:`FileNotFoundError`; anything unparsable or
    failing its ``crc32`` (when present) raises
    :class:`~repro.errors.CorruptStorageError` carrying ``path``.
    """
    try:
        with open(path, "r", encoding="ascii") as handle:
            text = handle.read()
        manifest = json.loads(text)
    except FileNotFoundError:
        raise
    # UnicodeDecodeError (a bit flipped into the high half) is a
    # ValueError too; both mean the same thing here: damaged manifest.
    except ValueError as exc:
        raise CorruptStorageError(
            "service manifest %s is unreadable: %s" % (path, exc),
            path=path) from None
    if not isinstance(manifest, dict):
        raise CorruptStorageError(
            "service manifest %s is not a JSON object" % path,
            path=path)
    crc = manifest.get("crc32")
    if crc is not None:
        body = _manifest_body(manifest).encode("ascii")
        if crc != zlib.crc32(body) & 0xFFFFFFFF:
            raise CorruptStorageError(
                "service manifest %s fails its checksum" % path,
                path=path)
    return manifest


class CoreService:
    """Serve core-index queries over a dynamic graph.

    Build one with :meth:`from_storage` / :meth:`from_graph` (seeds the
    index with a decomposition run) or :meth:`open` (resumes from a
    checkpointed data directory).  The constructor itself only wires
    already-consistent parts together.
    """

    def __init__(self, maintainer, *, cache_capacity=DEFAULT_CAPACITY,
                 journal=None, data_dir=None,
                 checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                 insert_algorithm="star", epoch=0, events_applied=0,
                 graph_path=None, seed_algorithm=None, edge_delta=None,
                 apply_retries=DEFAULT_APPLY_RETRIES,
                 retry_backoff=DEFAULT_RETRY_BACKOFF):
        self._maintainer = maintainer
        self._cache = ServiceCache(cache_capacity)
        self._journal = journal
        self._data_dir = os.fspath(data_dir) if data_dir is not None else None
        self._checkpoint_interval = checkpoint_interval
        self._check_algorithm(insert_algorithm)
        self._insert_algorithm = insert_algorithm
        self._epoch = epoch
        self._events_applied = events_applied
        self._graph_path = graph_path
        self._seed_algorithm = seed_algorithm
        self._last_checkpoint_epoch = epoch
        self._queries_served = 0
        if apply_retries < 0:
            raise ReproError(
                "apply_retries must be >= 0, got %d" % apply_retries)
        self._apply_retries = apply_retries
        self._retry_backoff = retry_backoff
        #: Why the last write attempt failed (None while healthy); set
        #: by a quarantine or a failed rollback, cleared by the next
        #: successful batch.  Surfaced via :meth:`stats` and the CLI.
        self._degraded = None
        #: A rollback failure leaves live state unknown: the write
        #: plane refuses everything until the directory is scrubbed
        #: and reopened.  Reads keep serving the published snapshot.
        self._poisoned = False
        #: Batch ids quarantined in this run or recorded by the
        #: manifest / journal markers, and the event count they cover.
        self._quarantined = set()
        self._events_quarantined = 0
        #: Net difference of the graph's edge set against its *seed*
        #: tables: ``(u, v) -> "+"/"-"`` with ``u < v``.  Checkpointed
        #: next to ``core``/``cnt`` so restarts rebuild the graph
        #: without replaying the (compacted) journal prefix.  Bounded
        #: by the real state divergence, not by traffic: an insert and
        #: its later deletion cancel.
        self._edge_delta = dict(edge_delta) if edge_delta else {}
        #: Storage this service opened itself (via a manifest graph
        #: path) and therefore must close; caller-provided storage
        #: stays the caller's.
        self._owned_storage = None
        #: The swap lock serializes "read the snapshot pointer and pin
        #: it" against "replace the snapshot pointer"; it is held for a
        #: few instructions only, never across a query or a batch.
        self._swap_lock = threading.Lock()
        #: Serving counters shared between reader threads.
        self._counter_lock = threading.Lock()
        self._snapshots_retired = 0
        #: Push-mode metrics, created by :meth:`register_metrics`; the
        #: hot paths check for None so an unregistered service pays
        #: nothing.
        self._m_apply_seconds = None
        self._m_apply_outcomes = None
        self._m_apply_retry_count = 0
        #: The published read plane: one sequential scan seeds it (the
        #: same figure any full pass pays); each applied batch advances
        #: it incrementally and swaps the pointer.
        self._snapshot = EpochSnapshot.build(
            maintainer.graph, maintainer.cores,
            epoch=epoch, events_applied=events_applied)
        #: Test-only crash-injection points: after the journal append
        #: but before the batch touches the index; after the next-epoch
        #: state and snapshot are built but before the pointer swap
        #: publishes them; after the checkpoint rotated the journal but
        #: before the manifest is written; and after the manifest is
        #: written but before compaction unlinks covered segments.
        self._crash_after_journal = None
        self._crash_before_publish = None
        self._crash_after_rotate = None
        self._crash_before_compact = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_storage(cls, storage, *, algorithm="semicore*", engine=None,
                     cache_capacity=DEFAULT_CAPACITY, data_dir=None,
                     buffer_capacity=DEFAULT_BUFFER_CAPACITY,
                     path_factory=None,
                     checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                     insert_algorithm="star",
                     segment_events=DEFAULT_SEGMENT_EVENTS,
                     apply_retries=DEFAULT_APPLY_RETRIES,
                     retry_backoff=DEFAULT_RETRY_BACKOFF):
        """Seed a service over on-disk (or in-memory) graph tables.

        ``algorithm`` picks any decomposition algorithm for the seeding
        run and ``engine`` any execution engine -- both maintained
        arrays are bit-identical across those choices.  With
        ``data_dir`` the service journals updates and checkpoints there,
        making :meth:`open` restarts possible.
        """
        graph = DynamicGraph(storage, buffer_capacity=buffer_capacity,
                             path_factory=path_factory)
        return cls.from_graph(
            graph, algorithm=algorithm, engine=engine,
            cache_capacity=cache_capacity, data_dir=data_dir,
            checkpoint_interval=checkpoint_interval,
            insert_algorithm=insert_algorithm,
            segment_events=segment_events,
            graph_path=getattr(storage, "path", None),
            apply_retries=apply_retries, retry_backoff=retry_backoff,
        )

    @classmethod
    def from_graph(cls, graph, *, algorithm="semicore*", engine=None,
                   cache_capacity=DEFAULT_CAPACITY, data_dir=None,
                   checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                   insert_algorithm="star", graph_path=None,
                   segment_events=DEFAULT_SEGMENT_EVENTS,
                   apply_retries=DEFAULT_APPLY_RETRIES,
                   retry_backoff=DEFAULT_RETRY_BACKOFF):
        """Seed a service over any mutable graph with the read protocol."""
        result = run_decomposition(algorithm, graph, engine=engine)
        cores = array("i", result.cores)
        if result.cnt is not None:
            cnt = array("i", result.cnt)
        else:
            cnt = _compute_cnt_scan(graph, cores)
        maintainer = CoreMaintainer(graph, cores, cnt, engine=engine)
        journal = None
        if data_dir is not None:
            data_dir = os.fspath(data_dir)
            if os.path.exists(os.path.join(data_dir, MANIFEST_NAME)):
                raise ReproError(
                    "data directory %s is already initialized; resume it "
                    "with CoreService.open instead of reseeding" % data_dir)
            os.makedirs(data_dir, exist_ok=True)
            journal = EventJournal(data_dir, segment_events=segment_events)
        service = cls(maintainer, cache_capacity=cache_capacity,
                      journal=journal, data_dir=data_dir,
                      checkpoint_interval=checkpoint_interval,
                      insert_algorithm=insert_algorithm,
                      graph_path=graph_path, seed_algorithm=algorithm,
                      apply_retries=apply_retries,
                      retry_backoff=retry_backoff)
        service.seed_result = result
        if data_dir is not None:
            service.checkpoint()
        return service

    @classmethod
    def open(cls, data_dir, storage=None, *, engine=None,
             cache_capacity=DEFAULT_CAPACITY,
             buffer_capacity=DEFAULT_BUFFER_CAPACITY, path_factory=None,
             checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
             insert_algorithm="star",
             segment_events=DEFAULT_SEGMENT_EVENTS,
             apply_retries=DEFAULT_APPLY_RETRIES,
             retry_backoff=DEFAULT_RETRY_BACKOFF):
        """Resume a service from its checkpointed data directory.

        ``storage`` must be the *seed* graph tables the service was
        created over (pristine -- the service never mutates them in
        place); when omitted, the path recorded in the manifest is
        reopened.  Restart is bounded: the graph is rebuilt from the
        seed tables plus the checkpointed net edge delta (no event
        replay), and only the journal *tail* past the checkpoint
        watermark is streamed through the maintenance algorithms -- so
        the resumed ``core``, ``cnt`` and epoch equal a
        straight-through run's, at a cost independent of how many
        events the service ever absorbed.  A v1 manifest (single-file
        journal, no delta) falls back to replaying the full journal
        prefix into the graph, exactly as the v1 code did.  A
        corrupted journal raises
        :class:`~repro.errors.CorruptStorageError` before any state is
        touched.
        """
        data_dir = os.fspath(data_dir)
        manifest_path = os.path.join(data_dir, MANIFEST_NAME)
        try:
            manifest = _load_manifest(manifest_path)
        except FileNotFoundError:
            raise ReproError(
                "no service manifest under %s (seed one with "
                "CoreService.from_storage(data_dir=...))" % data_dir
            ) from None
        version = manifest.get("version")
        if version not in (1, MANIFEST_VERSION):
            raise CorruptStorageError(
                "unsupported service manifest version %r" % (version,),
                path=manifest_path)
        graph_path = manifest.get("graph_path")
        owned_storage = None
        if storage is None:
            if not graph_path:
                raise ReproError(
                    "manifest records no graph path; pass the seed "
                    "storage explicitly")
            storage = owned_storage = GraphStorage.open(graph_path)
        journal = None
        try:
            journal = EventJournal(data_dir,
                                   segment_events=segment_events)
            applied = int(manifest["events_applied"])
            if applied > journal.num_events:
                raise CorruptStorageError(
                    "journal holds %d events but the checkpoint covers %d"
                    % (journal.num_events, applied),
                    path=data_dir)
            graph = DynamicGraph(storage, buffer_capacity=buffer_capacity,
                                 path_factory=path_factory)
            edge_delta = {}
            if version == 1:
                # v1 layout: no delta file, nothing ever compacted --
                # the checkpointed arrays describe the graph *after*
                # the first ``applied`` events, so stream that prefix
                # into the graph alone (no maintenance needed -- the
                # index already reflects it).  The first checkpoint
                # migrates the directory to the segmented layout.
                for _, op, u, v in journal.iter_events(0, applied):
                    if op == "+":
                        graph.insert_edge(u, v, validate=False)
                    else:
                        graph.delete_edge(u, v, validate=False)
                    _toggle_delta(edge_delta, op, u, v)
            else:
                if applied < journal.first_retained_event:
                    raise CorruptStorageError(
                        "journal was compacted past the checkpoint: "
                        "first retained event is %d but the checkpoint "
                        "covers only %d"
                        % (journal.first_retained_event, applied),
                        path=data_dir)
                edge_delta = _read_delta_file(
                    os.path.join(data_dir, manifest["delta"]))
                # The delta is the *net* difference at the watermark;
                # applying it reproduces the exact observable graph of
                # an event-order replay (adjacency is merged sorted).
                for (u, v), op in sorted(edge_delta.items()):
                    if op == "+":
                        graph.insert_edge(u, v, validate=False)
                    else:
                        graph.delete_edge(u, v, validate=False)
            cores, cnt = load_checkpoint(
                os.path.join(data_dir, manifest.get("checkpoint",
                                                    CHECKPOINT_NAME)),
                graph)
            maintainer = CoreMaintainer(graph, cores, cnt, engine=engine)
            service = cls(maintainer, cache_capacity=cache_capacity,
                          journal=journal, data_dir=data_dir,
                          checkpoint_interval=checkpoint_interval,
                          insert_algorithm=insert_algorithm,
                          epoch=int(manifest["epoch"]),
                          events_applied=applied, graph_path=graph_path,
                          seed_algorithm=manifest.get("seed_algorithm"),
                          edge_delta=edge_delta,
                          apply_retries=apply_retries,
                          retry_backoff=retry_backoff)
            service._quarantined.update(
                manifest.get("quarantined_batches") or ())
            # Stream the journal tail through the full maintenance
            # path, preserving the original batch boundaries (= epoch
            # sequence).  Only segments past the watermark are read; a
            # quarantined batch's events are skipped but still consume
            # their epoch, exactly as in the original run.
            for batch, ops, quarantined in journal.iter_batches(
                    applied, include_quarantined=True):
                if quarantined:
                    service._skip_quarantined(batch, ops)
                else:
                    service._apply_ops(ops, batch=batch)
        except BaseException:
            if journal is not None:
                journal.close()
            if owned_storage is not None:
                owned_storage.close()
            raise
        service._owned_storage = owned_storage
        return service

    def close(self):
        """Release the journal and any storage this service opened itself.

        Caller-provided storage stays the caller's to close; storage
        reopened from a manifest ``graph_path`` belongs to the service.
        Note a compaction may already have retired the original tables
        (``DynamicGraph`` closes them), in which case this is a no-op.
        """
        if self._journal is not None:
            self._journal.close()
        if self._owned_storage is not None:
            self._owned_storage.close()
            self._owned_storage = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The dynamic graph the service maintains."""
        return self._maintainer.graph

    @property
    def maintainer(self):
        """The underlying :class:`CoreMaintainer`."""
        return self._maintainer

    @property
    def cache(self):
        """The query cache (read its ``stats`` next to ``io_stats``)."""
        return self._cache

    @property
    def journal(self):
        """The segmented write-ahead journal (None without a data dir)."""
        return self._journal

    @property
    def edge_delta(self):
        """Net edge difference against the seed tables (a copy)."""
        return dict(self._edge_delta)

    @property
    def cache_stats(self):
        """Hit/miss/eviction counters of the query cache."""
        return self._cache.stats

    @property
    def io_stats(self):
        """Block-I/O counters of the underlying graph."""
        return self.graph.io_stats

    @property
    def epoch(self):
        """Number of update batches applied to the index so far."""
        return self._epoch

    @property
    def events_applied(self):
        """Total edge events applied across all batches."""
        return self._events_applied

    @property
    def queries_served(self):
        """Number of read-API calls answered."""
        return self._queries_served

    @property
    def degraded(self):
        """Why the last write attempt failed; None while healthy."""
        return self._degraded

    @property
    def quarantined_batches(self):
        """Sorted ids of quarantined batches (journaled, never applied)."""
        return sorted(self._quarantined)

    @property
    def num_nodes(self):
        """Number of nodes of the served graph."""
        return self.graph.num_nodes

    def stats(self):
        """One dict of serving counters, for reports and debugging.

        The epoch / events / kmax triple comes from a single pinned
        snapshot, so it is coherent even when a batch applies
        concurrently.
        """
        io = self.io_stats
        snap = self._pin()
        try:
            stats = {
                "epoch": snap.epoch,
                "events_applied": snap.stats["events_applied"],
                "queries_served": self._queries_served,
                "kmax": self._degeneracy(snap),
                "cache": self._cache.stats.as_dict(),
                "read_ios": io.read_ios,
                "write_ios": io.write_ios,
                "snapshot": {
                    "epoch": snap.epoch,
                    # The stats call itself holds one pin; report the
                    # other in-flight readers.
                    "pins": snap.refcount - 1,
                    "retired": self._snapshots_retired,
                },
            }
        finally:
            snap.release()
        stats["degraded"] = self._degraded
        stats["quarantined"] = sorted(self._quarantined)
        stats["events_quarantined"] = self._events_quarantined
        if self._journal is not None:
            stats["journal"] = self._journal.stats()
        return stats

    def register_metrics(self, registry):
        """Re-home the serving counters onto a ``MetricsRegistry``.

        The existing exact counters (``stats()`` fields, ``CacheStats``,
        ``IOStats``, journal gauges) stay the single source of truth;
        the registry attaches pull-mode views that read them at
        collection time, so the hot paths pay nothing new and the old
        dict shapes are preserved verbatim.  The only push-mode metrics
        are the apply-latency histogram and per-outcome batch counter,
        observed once per :meth:`apply` call.  Idempotent (re-registering
        on the same registry refreshes the views); returns ``registry``.
        """
        gauge = registry.gauge
        counter = registry.counter
        gauge("repro_service_epoch",
              "Update batches applied (current epoch)."
              ).set_function(lambda: self._epoch)
        counter("repro_service_events_applied",
                "Edge events applied across all batches."
                ).set_function(lambda: self._events_applied)
        counter("repro_service_queries_served",
                "Read-API calls answered."
                ).set_function(lambda: self._queries_served)
        gauge("repro_service_degraded",
              "1 while the last write attempt failed, else 0."
              ).set_function(lambda: 1 if self._degraded else 0)
        gauge("repro_service_poisoned",
              "1 while the write plane refuses batches, else 0."
              ).set_function(lambda: 1 if self._poisoned else 0)
        gauge("repro_service_quarantined_batches",
              "Batches quarantined (journaled, never applied)."
              ).set_function(lambda: len(self._quarantined))
        counter("repro_service_events_quarantined",
                "Edge events inside quarantined batches."
                ).set_function(lambda: self._events_quarantined)
        cache_stats = self._cache.stats
        for field in ("hits", "misses", "evictions", "invalidations",
                      "stale"):
            counter("repro_cache_%s" % field,
                    "Query cache %s." % field
                    ).set_function(lambda f=field: getattr(cache_stats, f))
        gauge("repro_cache_hit_rate",
              "Query cache hit rate (0.0 before any lookup)."
              ).set_function(lambda: cache_stats.hit_rate)
        gauge("repro_cache_entries",
              "Entries resident in the query cache."
              ).set_function(lambda: len(self._cache))
        gauge("repro_snapshot_epoch",
              "Epoch of the published read snapshot."
              ).set_function(lambda: self._snapshot.epoch)
        gauge("repro_snapshot_pins",
              "In-flight reader pins on the published snapshot."
              ).set_function(lambda: self._snapshot.refcount)
        counter("repro_snapshots_retired",
                "Superseded snapshots fully released and dropped."
                ).set_function(lambda: self._snapshots_retired)
        for field, help_text in (
                ("read_ios", "Block read I/Os of the served graph."),
                ("write_ios", "Block write I/Os of the served graph."),
                ("bytes_read", "Bytes read from the block devices."),
                ("bytes_written", "Bytes written to the block devices.")):
            counter("repro_io_%s" % field, help_text
                    ).set_function(
                lambda f=field: getattr(self.io_stats, f))
        if self._journal is not None:
            journal = self._journal
            counter("repro_journal_fsyncs",
                    "Journal data-file fsyncs issued."
                    ).set_function(lambda: journal.fsyncs)
            counter("repro_journal_events",
                    "Events held by the journal (global offset)."
                    ).set_function(lambda: journal.num_events)
            gauge("repro_journal_segments",
                  "Live journal segment files."
                  ).set_function(lambda: len(journal.segments()))
            gauge("repro_journal_disk_bytes",
                  "Bytes of journal segments on disk."
                  ).set_function(lambda: journal.stats()["disk_bytes"])
        self._m_apply_seconds = registry.histogram(
            "repro_apply_seconds",
            "Wall-clock seconds per apply() batch.")
        self._m_apply_outcomes = registry.counter(
            "repro_apply_total",
            "apply() batches by outcome.", labelnames=("outcome",))
        counter("repro_apply_retries",
                "Batch attempts retried after a storage failure."
                ).set_function(lambda: self._m_apply_retry_count)
        return registry

    def verify(self):
        """Recompute the decomposition from scratch and compare (debug)."""
        return self._maintainer.verify()

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    # Every public read pins the published snapshot for exactly one
    # query; :meth:`read_view` hands the pin to the caller instead, so a
    # sequence of reads observes one coherent epoch however many swaps
    # happen meanwhile.  The ``_``-prefixed twins hold the actual query
    # logic against an explicit snapshot; nothing in them ever touches
    # the mutable maintainer state.

    def read_view(self):
        """Pin the current epoch; returns a :class:`SnapshotView`.

        Use as a context manager: every query through the view -- and
        its ``epoch`` / ``stats`` -- answers from the same snapshot.
        The pinned snapshot retires only after the view closes (and any
        other in-flight readers release), so holding a view across
        :meth:`apply` swaps is safe and coherent by construction.
        """
        return SnapshotView(self, self._pin())

    def _pin(self):
        with self._swap_lock:
            return self._snapshot.acquire()

    def coreness(self, v):
        """Core number of node ``v``.

        Validation precedes accounting throughout the read API: a
        rejected query is never counted as served.
        """
        snap = self._pin()
        try:
            return self._coreness(snap, v)
        finally:
            snap.release()

    def coreness_many(self, nodes):
        """Core numbers for a batch of nodes, from one pinned epoch.

        The whole batch is validated up front (a rejected batch counts
        nothing), then each node is one served query and one cache
        probe -- the counters move exactly as if the caller had issued
        :meth:`coreness` per node.  Unlike per-node calls, the batch
        pins a single snapshot, so its values can never straddle an
        ``apply()`` swap.
        """
        snap = self._pin()
        try:
            return self._coreness_many(snap, nodes)
        finally:
            snap.release()

    def kcore_members(self, k):
        """Node ids of the k-core (``core(v) >= k``)."""
        snap = self._pin()
        try:
            return self._kcore_members(snap, k)
        finally:
            snap.release()

    def kcore_subgraph(self, k):
        """Edges of the k-core subgraph, from the epoch snapshot.

        Member adjacencies are walked from the snapshot's frozen rows
        (vectorized through its CSR artifact when numpy is available)
        in ascending node order and filtered against the threshold; the
        result is the sorted ``(u, v)`` edge list with ``u < v``.
        """
        snap = self._pin()
        try:
            return self._kcore_subgraph(snap, k)
        finally:
            snap.release()

    def core_histogram(self):
        """Mapping ``k -> number of nodes with core number exactly k``."""
        snap = self._pin()
        try:
            return self._core_histogram(snap)
        finally:
            snap.release()

    def top_k(self, k):
        """The ``k`` highest-coreness ``(node, core)`` pairs.

        Deterministic order: descending core number, ascending node id.
        """
        snap = self._pin()
        try:
            return self._top_k(snap, k)
        finally:
            snap.release()

    def degeneracy(self):
        """The largest core number currently present."""
        snap = self._pin()
        try:
            return self._degeneracy(snap)
        finally:
            snap.release()

    # -- query logic against an explicit snapshot -----------------------
    def _coreness(self, snap, v):
        v = self._check_node(v, snap.num_nodes)
        self._count_queries(1)
        return self._cached(snap, ("coreness", v),
                            lambda: snap.cores[v])

    def _coreness_many(self, snap, nodes):
        # Validation is hoisted ahead of the loop: no counter moves and
        # no cache entry is touched unless the whole batch is in range.
        nodes = [self._check_node(v, snap.num_nodes) for v in nodes]
        cores = snap.cores
        values = []
        for v in nodes:
            self._count_queries(1)
            values.append(self._cached(snap, ("coreness", v),
                                       lambda v=v: cores[v]))
        return values

    def _kcore_members(self, snap, k):
        k = self._check_k(k)
        self._count_queries(1)
        value = self._cached(
            snap, ("members", k),
            lambda: tuple(k_core_nodes(snap.cores, k)))
        return list(value)

    def _kcore_subgraph(self, snap, k):
        k = self._check_k(k)
        self._count_queries(1)
        value = self._cached(snap, ("subgraph", k),
                             lambda: self._extract_subgraph(snap, k))
        return list(value)

    def _core_histogram(self, snap):
        self._count_queries(1)
        value = self._cached(
            snap, ("histogram",),
            lambda: tuple(sorted(
                core_histogram(snap.cores).items())))
        return dict(value)

    def _top_k(self, snap, k):
        k = self._check_k(k)
        self._count_queries(1)
        value = self._cached(snap, ("top", k),
                             lambda: self._compute_top(snap, k))
        return list(value)

    def _degeneracy(self, snap):
        self._count_queries(1)
        return self._cached(snap, ("degeneracy",), lambda: snap.kmax)

    def _count_queries(self, n):
        with self._counter_lock:
            self._queries_served += n

    # ------------------------------------------------------------------
    # write API
    # ------------------------------------------------------------------
    def apply(self, events, *, algorithm=None):
        """Apply a batch of ``("+"|"-", u, v)`` events to graph and index.

        The batch is validated against the current graph, journaled
        (when the service has a data directory), routed through the
        maintenance algorithms in order, and finally the epoch is bumped
        and the affected cache entries evicted.  Returns the
        ``CoreMaintainer.apply_batch`` summary extended with ``epoch``
        and ``max_core_touched``.  An empty batch is a no-op and does
        not bump the epoch.

        The batch is transactional under storage failure: any
        ``OSError`` / :class:`~repro.errors.StorageError` rolls the
        live plane back to the pre-batch state and the whole batch is
        retried with exponential backoff; after every retry fails it is
        quarantined (marked in the journal, epoch consumed, reads keep
        serving) and :class:`~repro.errors.BatchQuarantinedError`
        raised.  See :meth:`_apply_with_recovery`.
        """
        if self._poisoned:
            raise ServiceDegradedError(
                "service is degraded (%s); reads keep serving but "
                "writes are refused until the data directory is "
                "scrubbed and reopened" % self._degraded)
        ops = [self._normalize_event(event) for event in events]
        if not ops:
            # The no-op summary comes from the same maintainer call the
            # non-empty path uses, so its keys cannot drift from
            # ``_apply_ops``'s.
            return self._finish_summary(self._maintainer.apply_batch([]),
                                        touched=0)
        self._check_algorithm(algorithm)
        started = time.perf_counter()
        outcome = "applied"
        try:
            with span("service.apply", io=self.io_stats,
                      events=len(ops)) as apply_span:
                # Validation reads the graph, so it can hit the same
                # flaky device as maintenance.  It mutates nothing, so a
                # plain bounded retry suffices -- no rollback, and a
                # persistent failure rejects the batch before anything
                # is journaled.
                with span("service.validate", io=self.io_stats):
                    for attempt in range(self._apply_retries + 1):
                        if attempt:
                            time.sleep(
                                self._retry_backoff * (2 ** (attempt - 1)))
                            self._m_apply_retry_count += 1
                        try:
                            self._validate_ops(ops)
                            break
                        except (OSError, StorageError):
                            if attempt == self._apply_retries:
                                raise
                batch = self._epoch + 1
                apply_span.annotate(batch=batch)
                if self._journal is not None:
                    with span("service.journal_append", io=self.io_stats):
                        self._journal.append(ops, batch)
                if self._crash_after_journal is not None:
                    self._crash_after_journal()
                summary = self._apply_with_recovery(ops, batch=batch,
                                                    algorithm=algorithm)
        except BatchQuarantinedError:
            outcome = "quarantined"
            raise
        except ServiceDegradedError:
            outcome = "degraded"
            raise
        except (OSError, StorageError):
            outcome = "storage_error"
            raise
        except ReproError:
            outcome = "rejected"
            raise
        finally:
            if self._m_apply_seconds is not None:
                self._m_apply_seconds.observe(
                    time.perf_counter() - started)
                self._m_apply_outcomes.labels(outcome=outcome).inc()
        if (self._data_dir is not None
                and self._checkpoint_interval is not None
                and self._epoch - self._last_checkpoint_epoch
                >= self._checkpoint_interval):
            with span("service.checkpoint", io=self.io_stats,
                      epoch=self._epoch):
                self.checkpoint()
        return summary

    def checkpoint(self):
        """Checkpoint the index + graph delta, rotate, then compact.

        The checkpoint transaction, in durable order:

        1. **rotate** -- the journal seals its active segment and opens
           a fresh one, so the new watermark falls exactly on a segment
           boundary;
        2. **state + delta** -- ``core``/``cnt`` and the net edge delta
           are written to *epoch-versioned* files
           (``state.<epoch>.ckpt`` / ``graph.<epoch>.delta``), each via
           temp file + fsync + atomic rename;
        3. **manifest** -- the manifest (same temp/fsync/rename
           discipline, then a directory fsync) atomically repoints the
           directory at the new pair and records the journal watermark
           with the per-segment event offsets;
        4. **compact** -- sealed segments fully covered by the new
           watermark are unlinked, and checkpoint/delta files of
           earlier epochs (including a v1 ``state.ckpt``) are retired.

        A crash anywhere in the sequence leaves a directory that opens
        to a consistent state: before step 3 the previous
        manifest/state/delta triple is still in effect (the extra
        segments and files are garbage the next checkpoint collects);
        after step 3 the new triple is, and compaction merely has not
        happened yet.
        """
        if self._data_dir is None:
            raise ReproError("service has no data directory to "
                             "checkpoint into")
        if self._poisoned:
            raise ServiceDegradedError(
                "service is degraded (%s); refusing to checkpoint "
                "unknown live state" % self._degraded)
        if self._journal is not None:
            self._journal.rotate()
            if self._crash_after_rotate is not None:
                self._crash_after_rotate()
        state_name = _checkpoint_file(self._epoch)
        delta_name = _delta_file(self._epoch)
        state_path = os.path.join(self._data_dir, state_name)
        save_checkpoint(state_path + ".tmp", self.graph,
                        self._maintainer.cores, self._maintainer.cnt)
        _fsync_path(state_path + ".tmp")
        os.replace(state_path + ".tmp", state_path)
        delta_path = os.path.join(self._data_dir, delta_name)
        _write_delta_file(delta_path + ".tmp", self._edge_delta)
        _fsync_path(delta_path + ".tmp")
        os.replace(delta_path + ".tmp", delta_path)
        manifest = {
            "version": MANIFEST_VERSION,
            "epoch": self._epoch,
            "events_applied": self._events_applied,
            "checkpoint": state_name,
            "delta": delta_name,
            "journal": self._journal_manifest(),
            "graph_path": self._graph_path,
            "seed_algorithm": self._seed_algorithm,
            "num_nodes": self.graph.num_nodes,
            "quarantined_batches": sorted(self._quarantined),
        }
        manifest["crc32"] = zlib.crc32(
            _manifest_body(manifest).encode("ascii")) & 0xFFFFFFFF
        blob = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        manifest_path = os.path.join(self._data_dir, MANIFEST_NAME)
        with open(manifest_path + ".tmp", "w", encoding="ascii") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        # Epoch-stamped duplicate of the pointer: ``repro scrub``
        # restores a damaged ``manifest.json`` from the newest intact
        # copy whose artifacts still verify.
        copy_name = _manifest_copy_file(self._epoch)
        copy_path = os.path.join(self._data_dir, copy_name)
        with open(copy_path + ".tmp", "w", encoding="ascii") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(copy_path + ".tmp", copy_path)
        _fsync_path(self._data_dir)
        if self._crash_before_compact is not None:
            self._crash_before_compact()
        if self._journal is not None:
            self._journal.compact(self._events_applied)
        self._retire_stale_files(state_name, delta_name, copy_name)
        self._last_checkpoint_epoch = self._epoch

    def _journal_manifest(self):
        """The manifest's journal clause: watermark + segment offsets.

        Informational redundancy for operators and forensics -- the
        journal directory itself is the source of truth on open (a
        crash between rotation/compaction and the next manifest write
        legitimately leaves more, or fewer, segments than listed).
        """
        if self._journal is None:
            return None
        segments = self._journal.segments()
        return {
            "format": 2,
            "watermark_events": self._events_applied,
            "watermark_segment": segments[-1]["seq"],
            "segments": segments,
        }

    def _retire_stale_files(self, state_name, delta_name, copy_name):
        """Unlink checkpoint/delta files the manifest no longer names.

        Also collects a migrated v1 ``state.ckpt``, superseded manifest
        duplicates, and any ``.tmp`` strays a crashed checkpoint left
        behind (the journal's own temp files are the journal's to
        clean).
        """
        removed = False
        for name in os.listdir(self._data_dir):
            if name in (state_name, delta_name, copy_name):
                continue
            stale = (
                (name.startswith("state.") and name.endswith(".ckpt"))
                or (name.startswith("graph.") and name.endswith(".delta"))
                or _MANIFEST_COPY_RE.match(name) is not None
                or (name.endswith(".tmp")
                    and not name.startswith("journal."))
            )
            if stale:
                os.unlink(os.path.join(self._data_dir, name))
                removed = True
        if removed:
            _fsync_path(self._data_dir)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cached(self, snap, key, compute):
        """Read-through probe gated by the reader's pinned epoch.

        A hit must be tagged at or before the pinned epoch (newer
        entries may reflect state the snapshot predates).  On a miss the
        value is computed from the snapshot and inserted -- but only if
        the snapshot is still the published one at insert time, checked
        under the cache lock so the check cannot interleave with the
        writer's swap-then-invalidate sequence: either the put lands
        before the invalidation (which then evicts it if the batch
        affected it) or the snapshot is already superseded and the put
        is skipped.  Skipping is always safe; inserting a stale value
        unguarded would poison later epochs.
        """
        hit, value = self._cache.get(key, max_epoch=snap.epoch)
        if hit:
            return value
        value = compute()
        with self._cache.lock:
            if self._snapshot is snap:
                self._cache.put(key, value, snap.epoch)
        return value

    def _extract_subgraph(self, snap, k):
        cores = snap.cores
        csr = snap.csr()
        edges = []
        if csr is not None:
            # The snapshot's CSR artifact: filter whole adjacency
            # slices at once.  Identical output to the row walk below
            # (rows are ascending, slices preserve their order).
            cores_np = snap.cores_np()
            for v in k_core_nodes(cores, k):
                nbrs = csr.neighbors(v)
                keep = nbrs[(nbrs > v) & (cores_np[nbrs] >= k)]
                edges.extend((v, int(u)) for u in keep)
            return tuple(edges)
        for v in k_core_nodes(cores, k):
            for u in snap.neighbors(v):
                if u > v and cores[u] >= k:
                    edges.append((v, int(u)))
        return tuple(edges)

    def _compute_top(self, snap, k):
        cores = snap.cores
        order = heapq.nsmallest(k, range(len(cores)),
                                key=lambda v: (-cores[v], v))
        return tuple((v, cores[v]) for v in order)

    def _apply_ops(self, ops, *, batch, algorithm=None):
        """Run one validated, already-journaled batch through maintenance.

        Everything up to :meth:`_publish` mutates only the private
        next-epoch state (maintainer arrays, graph, edge delta) and
        builds the next snapshot; readers keep answering from the
        published epoch throughout.  The pointer swap is the single
        instant the batch becomes visible.
        """
        pre = array("i", self._maintainer.cores)
        touched = 0
        for _, u, v in ops:
            touched = max(touched, min(pre[u], pre[v]))
        # validate=False: the batch was already checked (with overlay
        # semantics) by _validate_ops, so re-validating inside the
        # maintenance kernels would only double the charged reads.
        with span("service.maintain", io=self.io_stats, batch=batch):
            summary = self._maintainer.apply_batch(
                ops, algorithm=algorithm or self._insert_algorithm,
                validate=False)
        cores = self._maintainer.cores
        for _, u, v in ops:
            touched = max(touched, min(cores[u], cores[v]))
        for v in summary["changed_nodes"]:
            touched = max(touched, pre[v], cores[v])
        endpoints = set()
        for _, u, v in ops:
            endpoints.add(u)
            endpoints.add(v)
        with span("service.snapshot_advance", io=self.io_stats,
                  batch=batch):
            snapshot = self._snapshot.advance(
                self.graph, cores, epoch=batch,
                events_applied=self._events_applied + len(ops),
                touched=endpoints)
        # Only once every fallible step (maintenance, snapshot reads)
        # is behind us does the in-memory delta move: a failed attempt
        # never needs to untoggle it.
        for op, u, v in ops:
            _toggle_delta(self._edge_delta, op, u, v)
        if self._crash_before_publish is not None:
            self._crash_before_publish()
        with span("service.publish", batch=batch):
            self._publish(snapshot, summary["changed_nodes"], touched)
        return self._finish_summary(summary, touched)

    def _apply_with_recovery(self, ops, *, batch, algorithm=None):
        """Run a journaled batch with rollback, retry and quarantine.

        Storage failures (``OSError`` / :class:`StorageError`) roll the
        live plane back to the pre-batch state and the whole batch is
        retried with exponential backoff (``retry_backoff *
        2**attempt``); logic errors propagate untouched, exactly as
        before.  After ``apply_retries`` retries the batch is
        quarantined via :meth:`_quarantine`.  If even the rollback
        cannot complete, the write plane is *poisoned*: further writes
        raise :class:`ServiceDegradedError` while reads keep serving
        the still-consistent published snapshot.
        """
        pre_cores = array("i", self._maintainer.cores)
        pre_cnt = array("i", self._maintainer.cnt)
        pre_history = len(self._maintainer.history)
        error = None
        for attempt in range(self._apply_retries + 1):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
                self._m_apply_retry_count += 1
            try:
                summary = self._apply_ops(ops, batch=batch,
                                          algorithm=algorithm)
            except (OSError, StorageError) as exc:
                error = exc
                try:
                    self._rollback(ops, pre_cores, pre_cnt, pre_history)
                except (OSError, StorageError) as failure:
                    self._poisoned = True
                    self._degraded = ("rollback of batch %d failed: %s"
                                      % (batch, failure))
                    raise ServiceDegradedError(
                        "batch %d failed (%s) and its rollback failed "
                        "too (%s); write plane disabled, reads keep "
                        "serving the pre-batch epoch"
                        % (batch, exc, failure)) from exc
            else:
                self._degraded = None
                return summary
        self._quarantine(ops, batch, error)

    def _rollback(self, ops, pre_cores, pre_cnt, pre_history):
        """Restore the pre-batch live plane after a failed attempt.

        Idempotent, and retried internally with the same backoff
        because the repair's reads can hit the same faulty device that
        failed the batch.  Raises the last error when every attempt
        fails.
        """
        error = None
        for attempt in range(self._apply_retries + 1):
            if attempt:
                time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
            try:
                self._restore_pre_batch(ops, pre_cores, pre_cnt,
                                        pre_history)
                return
            except (OSError, StorageError) as exc:
                error = exc
        raise error

    def _restore_pre_batch(self, ops, pre_cores, pre_cnt, pre_history):
        """One rollback attempt: arrays in place, graph by repair.

        Graph membership is recovered from the batch itself: validation
        proved each edge key's *first* event matched the pre-batch
        graph, so a first ``"+"`` means the edge was absent and a first
        ``"-"`` that it was present.  Nothing else can have moved --
        ``apply`` is serialized and the maintenance kernels only touch
        the batch's edges.
        """
        maintainer = self._maintainer
        maintainer.cores[:] = pre_cores
        maintainer.cnt[:] = pre_cnt
        del maintainer.history[pre_history:]
        graph = self.graph
        first = {}
        for op, u, v in ops:
            key = (u, v) if u < v else (v, u)
            first.setdefault(key, op)
        for (u, v), op in first.items():
            present_before = op == "-"
            if graph.has_edge(u, v) == present_before:
                continue
            if present_before:
                graph.insert_edge(u, v, validate=False)
            else:
                graph.delete_edge(u, v, validate=False)

    def _quarantine(self, ops, batch, error):
        """Mark ``batch`` permanently failed and consume its epoch.

        The journal keeps the batch's events plus a kind-3 marker
        (restart replay skips them); the live plane publishes a no-op
        snapshot (``touched=()`` -- built without any device read) so
        the epoch sequence stays dense and the watermark arithmetic
        unchanged.  A failure to persist the marker is tolerated: the
        batch is then *retried* at the next open instead of skipped,
        which can only improve on quarantine.  Raises
        :class:`BatchQuarantinedError`.
        """
        if self._journal is not None:
            try:
                self._journal.append_quarantine(batch)
            except (OSError, StorageError):
                pass
        snapshot = self._snapshot.advance(
            self.graph, self._maintainer.cores, epoch=batch,
            events_applied=self._events_applied + len(ops), touched=())
        self._publish(snapshot, [], 0)
        self._quarantined.add(batch)
        self._events_quarantined += len(ops)
        self._degraded = ("batch %d quarantined after %d failed "
                          "attempts: %s"
                          % (batch, self._apply_retries + 1, error))
        raise BatchQuarantinedError(
            "batch %d failed %d attempts and was quarantined (%s); "
            "reads keep serving the pre-batch state"
            % (batch, self._apply_retries + 1, error),
            batch=batch) from error

    def _skip_quarantined(self, batch, ops):
        """Replay-side twin of :meth:`_quarantine`.

        Consumes the epoch of an already-marked batch during restart
        replay without applying its events, keeping the resumed epoch
        sequence identical to the original run's.
        """
        snapshot = self._snapshot.advance(
            self.graph, self._maintainer.cores, epoch=batch,
            events_applied=self._events_applied + len(ops), touched=())
        self._publish(snapshot, [], 0)
        self._quarantined.add(batch)
        self._events_quarantined += len(ops)

    def _publish(self, snapshot, changed_nodes, touched):
        """Atomically swap the read plane to ``snapshot``.

        Order matters: (1) swap the pointer under the swap lock -- from
        here on new pins see the new epoch; (2) evict the affected
        cache entries under the cache lock -- any stale put racing this
        either landed before (and is evicted here if affected) or
        observes the new pointer and skips itself; (3) retire the
        predecessor, which drops its buffers as soon as the last pinned
        reader releases.
        """
        with self._swap_lock:
            old = self._snapshot
            self._snapshot = snapshot
            self._epoch = snapshot.epoch
            self._events_applied = snapshot.stats["events_applied"]
        with self._cache.lock:
            self._cache.invalidate(changed_nodes, touched)
        old.on_drop = self._note_retired
        old.retire()

    def _note_retired(self, _snapshot):
        with self._counter_lock:
            self._snapshots_retired += 1

    def _finish_summary(self, summary, touched):
        """Annotate a maintainer batch summary with the serving fields."""
        summary["epoch"] = self._epoch
        summary["max_core_touched"] = touched
        return summary

    def _normalize_event(self, event):
        try:
            op, u, v = event
        except (TypeError, ValueError):
            raise ReproError(
                "event must be a ('+'/'-', u, v) triple, got %r"
                % (event,)) from None
        if op not in ("+", "-"):
            raise ReproError(
                "event kind must be '+' or '-', got %r" % (op,))
        return op, int(u), int(v)

    def _validate_ops(self, ops):
        """Check a batch is applicable *before* it reaches the journal.

        Events within the batch interact (an insert may precede the
        deletion of the same edge), so applicability is simulated with
        an overlay on top of the current graph.  A batch that fails here
        is rejected wholesale -- nothing is journaled or applied.
        """
        graph = self.graph
        n = graph.num_nodes
        overlay = {}
        for op, u, v in ops:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(
                    "edge (%d, %d) out of range for n=%d" % (u, v, n))
            if u == v:
                raise GraphError("self loop (%d, %d) not allowed" % (u, v))
            key = (u, v) if u < v else (v, u)
            present = overlay.get(key)
            if present is None:
                present = graph.has_edge(u, v)
            if op == "+":
                if present:
                    raise EdgeExistsError(
                        "edge (%d, %d) already present" % (u, v))
            else:
                if not present:
                    raise EdgeNotFoundError(
                        "edge (%d, %d) not present" % (u, v))
            overlay[key] = op == "+"

    def _check_algorithm(self, algorithm):
        """Reject unknown insert algorithms *before* the batch is journaled.

        The maintainer would raise on its own -- but only mid-batch,
        after the journal append and possibly after earlier events
        mutated the index, leaving a half-applied batch the journal
        would still replay in full.
        """
        from repro.core.maintenance.maintainer import INSERT_ALGORITHMS

        if algorithm is not None and algorithm not in INSERT_ALGORITHMS:
            raise ValueError(
                "unknown insert algorithm %r (choose from %r)"
                % (algorithm, INSERT_ALGORITHMS))

    @staticmethod
    def _check_node(v, n):
        if not 0 <= v < n:
            raise GraphError(
                "node %d out of range for n=%d" % (v, n))
        return v

    @staticmethod
    def _check_k(k):
        if k < 0:
            raise ValueError("k must be non-negative")
        return k

    def __repr__(self):
        return ("CoreService(n=%d, epoch=%d, events=%d, queries=%d, "
                "cache_hit_rate=%.2f)"
                % (self.graph.num_nodes, self._epoch, self._events_applied,
                   self._queries_served, self._cache.stats.hit_rate))


def _toggle_delta(delta, op, u, v):
    """Fold one applied event into the net delta against the seed.

    Batch validation guarantees events alternate presence correctly,
    so an event either introduces a difference from the seed tables
    (new entry) or reverts a previous one (entry removed) -- the delta
    is always the *net* divergence, never a history.
    """
    key = (u, v) if u < v else (v, u)
    if key in delta:
        del delta[key]
    else:
        delta[key] = op


def _write_delta_file(path, delta):
    """Serialize a net edge delta, deterministically, CRC-protected."""
    body = b"".join(_DELTA_RECORD.pack(_DELTA_OPS[op], u, v)
                    for (u, v), op in sorted(delta.items()))
    with open(path, "wb") as handle:
        handle.write(_DELTA_HEADER.pack(_DELTA_MAGIC, _DELTA_VERSION,
                                        len(delta)))
        handle.write(body)
        handle.write(_DELTA_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF))


def _read_delta_file(path):
    """Load a net edge delta written by :func:`_write_delta_file`."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        raise CorruptStorageError(
            "manifest names a missing delta file %s" % path) from None
    if len(blob) < _DELTA_HEADER.size + _DELTA_CRC.size:
        raise CorruptStorageError("delta file %s is truncated" % path)
    magic, version, count = _DELTA_HEADER.unpack(
        blob[:_DELTA_HEADER.size])
    if magic != _DELTA_MAGIC:
        raise CorruptStorageError(
            "delta file %s: bad magic %r" % (path, magic))
    if version != _DELTA_VERSION:
        raise CorruptStorageError(
            "delta file %s: unsupported version %d" % (path, version))
    body = blob[_DELTA_HEADER.size:-_DELTA_CRC.size]
    if len(body) != count * _DELTA_RECORD.size:
        raise CorruptStorageError(
            "delta file %s holds %d bytes for %d records"
            % (path, len(body), count))
    if _DELTA_CRC.unpack(blob[-_DELTA_CRC.size:])[0] != \
            zlib.crc32(body) & 0xFFFFFFFF:
        raise CorruptStorageError(
            "delta file %s fails its checksum" % path)
    delta = {}
    for index in range(count):
        kind, u, v = _DELTA_RECORD.unpack_from(
            body, index * _DELTA_RECORD.size)
        if kind not in _DELTA_KINDS:
            raise CorruptStorageError(
                "delta file %s: record %d has kind %d"
                % (path, index, kind))
        delta[(u, v)] = _DELTA_KINDS[kind]
    return delta


def _compute_cnt_scan(graph, cores):
    """Eq. 2 counters for arbitrary seed algorithms, in one scan.

    SemiCore* hands its ``cnt`` array over directly; the other seeding
    algorithms only produce ``core[]``, so the counters are derived with
    a single sequential adjacency scan (I/O-counted like any scan).
    """
    from repro.core.locality import compute_cnt

    cnt = array("i", bytes(4 * graph.num_nodes))
    for v, nbrs in graph.iter_adjacency():
        cnt[v] = compute_cnt(cores, nbrs, cores[v])
    return cnt
