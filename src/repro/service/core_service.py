"""The core-index serving subsystem.

:class:`CoreService` is the long-lived object the ROADMAP's north star
asks for: it owns a :class:`~repro.storage.dynamic.DynamicGraph` plus a
maintained ``core[]``/``cnt[]`` index and serves read queries while
absorbing an edge-update stream.  The three moving parts:

* **read path** -- every query goes through a read-through
  :class:`~repro.service.cache.ServiceCache`; misses compute from the
  maintained index (and, for subgraph extraction, from I/O-counted
  adjacency reads).  Results are byte-identical with the cache on or
  off, and across execution engines.
* **write path** -- :meth:`apply` journals a batch of ``("+"|"-", u, v)``
  events (write-ahead), routes it through the maintenance algorithms of
  Section V (``engine=`` respected end-to-end), bumps the index *epoch*
  and evicts only the affected cache entries.
* **durability** -- every ``checkpoint_interval`` batches the
  ``core``/``cnt`` arrays are checkpointed via
  :mod:`repro.core.maintenance.checkpoint` and a manifest records the
  journal offset they are valid at.  :meth:`open` restarts by replaying
  the pre-checkpoint journal prefix into the graph (cheap, no
  maintenance), installing the checkpointed index, and re-running only
  the journal *tail* through the maintenance algorithms -- reproducing
  the straight-through state exactly (``tests/test_service_recovery.py``
  kills a service mid-batch to prove it).
"""

from __future__ import annotations

import heapq
import json
import os
from array import array

from repro.bench.harness import run_decomposition
from repro.core.kcore import core_histogram, degeneracy, k_core_nodes
from repro.core.maintenance.checkpoint import load_checkpoint, save_checkpoint
from repro.core.maintenance.maintainer import CoreMaintainer
from repro.errors import (
    CorruptStorageError,
    EdgeExistsError,
    EdgeNotFoundError,
    GraphError,
    ReproError,
)
from repro.service.cache import DEFAULT_CAPACITY, ServiceCache
from repro.service.journal import EventJournal
from repro.storage.dynamic import DEFAULT_BUFFER_CAPACITY, DynamicGraph
from repro.storage.graphstore import GraphStorage

MANIFEST_NAME = "manifest.json"
CHECKPOINT_NAME = "state.ckpt"
JOURNAL_NAME = "journal.log"
MANIFEST_VERSION = 1

#: Batches applied between automatic checkpoints (None disables them).
DEFAULT_CHECKPOINT_INTERVAL = 16


class CoreService:
    """Serve core-index queries over a dynamic graph.

    Build one with :meth:`from_storage` / :meth:`from_graph` (seeds the
    index with a decomposition run) or :meth:`open` (resumes from a
    checkpointed data directory).  The constructor itself only wires
    already-consistent parts together.
    """

    def __init__(self, maintainer, *, cache_capacity=DEFAULT_CAPACITY,
                 journal=None, data_dir=None,
                 checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                 insert_algorithm="star", epoch=0, events_applied=0,
                 graph_path=None, seed_algorithm=None):
        self._maintainer = maintainer
        self._cache = ServiceCache(cache_capacity)
        self._journal = journal
        self._data_dir = os.fspath(data_dir) if data_dir is not None else None
        self._checkpoint_interval = checkpoint_interval
        self._check_algorithm(insert_algorithm)
        self._insert_algorithm = insert_algorithm
        self._epoch = epoch
        self._events_applied = events_applied
        self._graph_path = graph_path
        self._seed_algorithm = seed_algorithm
        self._last_checkpoint_epoch = epoch
        self._queries_served = 0
        #: Storage this service opened itself (via a manifest graph
        #: path) and therefore must close; caller-provided storage
        #: stays the caller's.
        self._owned_storage = None
        #: Test-only crash-injection point: called after the journal
        #: append succeeds but before the batch touches the index.
        self._crash_after_journal = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_storage(cls, storage, *, algorithm="semicore*", engine=None,
                     cache_capacity=DEFAULT_CAPACITY, data_dir=None,
                     buffer_capacity=DEFAULT_BUFFER_CAPACITY,
                     path_factory=None,
                     checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                     insert_algorithm="star"):
        """Seed a service over on-disk (or in-memory) graph tables.

        ``algorithm`` picks any decomposition algorithm for the seeding
        run and ``engine`` any execution engine -- both maintained
        arrays are bit-identical across those choices.  With
        ``data_dir`` the service journals updates and checkpoints there,
        making :meth:`open` restarts possible.
        """
        graph = DynamicGraph(storage, buffer_capacity=buffer_capacity,
                             path_factory=path_factory)
        return cls.from_graph(
            graph, algorithm=algorithm, engine=engine,
            cache_capacity=cache_capacity, data_dir=data_dir,
            checkpoint_interval=checkpoint_interval,
            insert_algorithm=insert_algorithm,
            graph_path=getattr(storage, "path", None),
        )

    @classmethod
    def from_graph(cls, graph, *, algorithm="semicore*", engine=None,
                   cache_capacity=DEFAULT_CAPACITY, data_dir=None,
                   checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
                   insert_algorithm="star", graph_path=None):
        """Seed a service over any mutable graph with the read protocol."""
        result = run_decomposition(algorithm, graph, engine=engine)
        cores = array("i", result.cores)
        if result.cnt is not None:
            cnt = array("i", result.cnt)
        else:
            cnt = _compute_cnt_scan(graph, cores)
        maintainer = CoreMaintainer(graph, cores, cnt, engine=engine)
        journal = None
        if data_dir is not None:
            data_dir = os.fspath(data_dir)
            if os.path.exists(os.path.join(data_dir, MANIFEST_NAME)):
                raise ReproError(
                    "data directory %s is already initialized; resume it "
                    "with CoreService.open instead of reseeding" % data_dir)
            os.makedirs(data_dir, exist_ok=True)
            journal = EventJournal(os.path.join(data_dir, JOURNAL_NAME))
        service = cls(maintainer, cache_capacity=cache_capacity,
                      journal=journal, data_dir=data_dir,
                      checkpoint_interval=checkpoint_interval,
                      insert_algorithm=insert_algorithm,
                      graph_path=graph_path, seed_algorithm=algorithm)
        service.seed_result = result
        if data_dir is not None:
            service.checkpoint()
        return service

    @classmethod
    def open(cls, data_dir, storage=None, *, engine=None,
             cache_capacity=DEFAULT_CAPACITY,
             buffer_capacity=DEFAULT_BUFFER_CAPACITY, path_factory=None,
             checkpoint_interval=DEFAULT_CHECKPOINT_INTERVAL,
             insert_algorithm="star"):
        """Resume a service from its checkpointed data directory.

        ``storage`` must be the *seed* graph tables the service was
        created over (pristine -- the service never mutates them in
        place); when omitted, the path recorded in the manifest is
        reopened.  Restart replays the journal prefix covered by the
        checkpoint into the graph only, then re-runs the journal tail
        through the maintenance algorithms, so the resumed ``core``,
        ``cnt`` and epoch equal a straight-through run's.  A corrupted
        journal tail raises :class:`~repro.errors.CorruptStorageError`
        before any state is touched.
        """
        data_dir = os.fspath(data_dir)
        manifest_path = os.path.join(data_dir, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="ascii") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise ReproError(
                "no service manifest under %s (seed one with "
                "CoreService.from_storage(data_dir=...))" % data_dir
            ) from None
        except ValueError as exc:
            raise CorruptStorageError(
                "service manifest %s is unreadable: %s"
                % (manifest_path, exc)) from None
        if manifest.get("version") != MANIFEST_VERSION:
            raise CorruptStorageError(
                "unsupported service manifest version %r"
                % (manifest.get("version"),))
        graph_path = manifest.get("graph_path")
        owned_storage = None
        if storage is None:
            if not graph_path:
                raise ReproError(
                    "manifest records no graph path; pass the seed "
                    "storage explicitly")
            storage = owned_storage = GraphStorage.open(graph_path)
        try:
            journal = EventJournal(
                os.path.join(data_dir,
                             manifest.get("journal", JOURNAL_NAME)))
            applied = int(manifest["events_applied"])
            events = journal.events()
            if applied > len(events):
                raise CorruptStorageError(
                    "journal holds %d events but the checkpoint covers %d"
                    % (len(events), applied))
            graph = DynamicGraph(storage, buffer_capacity=buffer_capacity,
                                 path_factory=path_factory)
            # The checkpointed arrays describe the graph *after* the
            # first ``applied`` events; replay them into the graph alone
            # (no maintenance needed -- the index already reflects them).
            for _, op, u, v in events[:applied]:
                if op == "+":
                    graph.insert_edge(u, v, validate=False)
                else:
                    graph.delete_edge(u, v, validate=False)
            cores, cnt = load_checkpoint(
                os.path.join(data_dir, manifest.get("checkpoint",
                                                    CHECKPOINT_NAME)),
                graph)
            maintainer = CoreMaintainer(graph, cores, cnt, engine=engine)
            service = cls(maintainer, cache_capacity=cache_capacity,
                          journal=journal, data_dir=data_dir,
                          checkpoint_interval=checkpoint_interval,
                          insert_algorithm=insert_algorithm,
                          epoch=int(manifest["epoch"]),
                          events_applied=applied, graph_path=graph_path,
                          seed_algorithm=manifest.get("seed_algorithm"))
            # Re-run the journal tail through the full maintenance path,
            # preserving the original batch boundaries (= epoch
            # sequence).
            for batch, ops in journal.batches(applied):
                service._apply_ops(ops, batch=batch)
        except BaseException:
            if owned_storage is not None:
                owned_storage.close()
            raise
        service._owned_storage = owned_storage
        return service

    def close(self):
        """Release the journal and any storage this service opened itself.

        Caller-provided storage stays the caller's to close; storage
        reopened from a manifest ``graph_path`` belongs to the service.
        Note a compaction may already have retired the original tables
        (``DynamicGraph`` closes them), in which case this is a no-op.
        """
        if self._journal is not None:
            self._journal.close()
        if self._owned_storage is not None:
            self._owned_storage.close()
            self._owned_storage = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The dynamic graph the service maintains."""
        return self._maintainer.graph

    @property
    def maintainer(self):
        """The underlying :class:`CoreMaintainer`."""
        return self._maintainer

    @property
    def cache(self):
        """The query cache (read its ``stats`` next to ``io_stats``)."""
        return self._cache

    @property
    def cache_stats(self):
        """Hit/miss/eviction counters of the query cache."""
        return self._cache.stats

    @property
    def io_stats(self):
        """Block-I/O counters of the underlying graph."""
        return self.graph.io_stats

    @property
    def epoch(self):
        """Number of update batches applied to the index so far."""
        return self._epoch

    @property
    def events_applied(self):
        """Total edge events applied across all batches."""
        return self._events_applied

    @property
    def queries_served(self):
        """Number of read-API calls answered."""
        return self._queries_served

    @property
    def num_nodes(self):
        """Number of nodes of the served graph."""
        return self.graph.num_nodes

    def stats(self):
        """One dict of serving counters, for reports and debugging."""
        io = self.io_stats
        return {
            "epoch": self._epoch,
            "events_applied": self._events_applied,
            "queries_served": self._queries_served,
            "kmax": self.degeneracy(),
            "cache": self._cache.stats.as_dict(),
            "read_ios": io.read_ios,
            "write_ios": io.write_ios,
        }

    def verify(self):
        """Recompute the decomposition from scratch and compare (debug)."""
        return self._maintainer.verify()

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def coreness(self, v):
        """Core number of node ``v``."""
        self._queries_served += 1
        return self._cached(("coreness", self._check_node(v)),
                            lambda: self._maintainer.core(v))

    def coreness_many(self, nodes):
        """Core numbers for a batch of nodes (one cache probe each)."""
        self._queries_served += 1
        core = self._maintainer.core
        return [self._cached(("coreness", self._check_node(v)),
                             lambda v=v: core(v))
                for v in nodes]

    def kcore_members(self, k):
        """Node ids of the k-core (``core(v) >= k``)."""
        self._queries_served += 1
        value = self._cached(
            ("members", self._check_k(k)),
            lambda: tuple(k_core_nodes(self._maintainer.cores, k)))
        return list(value)

    def kcore_subgraph(self, k):
        """Edges of the k-core subgraph, streamed from storage.

        Member adjacencies are read from the (I/O-counted) graph in
        ascending node order and filtered against the threshold; the
        result is the sorted ``(u, v)`` edge list with ``u < v``.
        """
        self._queries_served += 1
        value = self._cached(("subgraph", self._check_k(k)),
                             lambda: self._extract_subgraph(k))
        return list(value)

    def core_histogram(self):
        """Mapping ``k -> number of nodes with core number exactly k``."""
        self._queries_served += 1
        value = self._cached(
            ("histogram",),
            lambda: tuple(sorted(
                core_histogram(self._maintainer.cores).items())))
        return dict(value)

    def top_k(self, k):
        """The ``k`` highest-coreness ``(node, core)`` pairs.

        Deterministic order: descending core number, ascending node id.
        """
        self._queries_served += 1
        if k < 0:
            raise ValueError("k must be non-negative")
        value = self._cached(("top", k), lambda: self._compute_top(k))
        return list(value)

    def degeneracy(self):
        """The largest core number currently present."""
        self._queries_served += 1
        return self._cached(
            ("degeneracy",),
            lambda: degeneracy(self._maintainer.cores))

    # ------------------------------------------------------------------
    # write API
    # ------------------------------------------------------------------
    def apply(self, events, *, algorithm=None):
        """Apply a batch of ``("+"|"-", u, v)`` events to graph and index.

        The batch is validated against the current graph, journaled
        (when the service has a data directory), routed through the
        maintenance algorithms in order, and finally the epoch is bumped
        and the affected cache entries evicted.  Returns the
        ``CoreMaintainer.apply_batch`` summary extended with ``epoch``
        and ``max_core_touched``.  An empty batch is a no-op and does
        not bump the epoch.
        """
        ops = [self._normalize_event(event) for event in events]
        if not ops:
            from repro.storage.blockio import IOStats

            return {"inserts": 0, "deletes": 0, "changed_nodes": [],
                    "node_computations": 0, "io": IOStats(),
                    "epoch": self._epoch, "max_core_touched": 0}
        self._check_algorithm(algorithm)
        self._validate_ops(ops)
        batch = self._epoch + 1
        if self._journal is not None:
            self._journal.append(ops, batch)
        if self._crash_after_journal is not None:
            self._crash_after_journal()
        summary = self._apply_ops(ops, batch=batch, algorithm=algorithm)
        if (self._data_dir is not None
                and self._checkpoint_interval is not None
                and self._epoch - self._last_checkpoint_epoch
                >= self._checkpoint_interval):
            self.checkpoint()
        return summary

    def checkpoint(self):
        """Checkpoint ``core``/``cnt`` and the covered journal offset.

        Both the state file and the manifest are written to a sibling
        temp file, fsynced, and atomically renamed (then the directory
        entry is fsynced), so a crash mid-checkpoint -- including a
        power loss with the rename journaled before the data blocks --
        leaves the previous consistent pair in place.
        """
        if self._data_dir is None:
            raise ReproError("service has no data directory to "
                             "checkpoint into")
        state_path = os.path.join(self._data_dir, CHECKPOINT_NAME)
        save_checkpoint(state_path + ".tmp", self.graph,
                        self._maintainer.cores, self._maintainer.cnt)
        _fsync_path(state_path + ".tmp")
        os.replace(state_path + ".tmp", state_path)
        manifest = {
            "version": MANIFEST_VERSION,
            "epoch": self._epoch,
            "events_applied": self._events_applied,
            "checkpoint": CHECKPOINT_NAME,
            "journal": JOURNAL_NAME,
            "graph_path": self._graph_path,
            "seed_algorithm": self._seed_algorithm,
            "num_nodes": self.graph.num_nodes,
        }
        manifest_path = os.path.join(self._data_dir, MANIFEST_NAME)
        with open(manifest_path + ".tmp", "w", encoding="ascii") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_path + ".tmp", manifest_path)
        _fsync_path(self._data_dir)
        self._last_checkpoint_epoch = self._epoch

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cached(self, key, compute):
        hit, value = self._cache.get(key)
        if hit:
            return value
        value = compute()
        self._cache.put(key, value, self._epoch)
        return value

    def _extract_subgraph(self, k):
        cores = self._maintainer.cores
        graph = self.graph
        edges = []
        for v in k_core_nodes(cores, k):
            for u in graph.neighbors(v):
                if u > v and cores[u] >= k:
                    edges.append((v, int(u)))
        return tuple(edges)

    def _compute_top(self, k):
        cores = self._maintainer.cores
        order = heapq.nsmallest(k, range(len(cores)),
                                key=lambda v: (-cores[v], v))
        return tuple((v, cores[v]) for v in order)

    def _apply_ops(self, ops, *, batch, algorithm=None):
        """Run one validated, already-journaled batch through maintenance."""
        pre = array("i", self._maintainer.cores)
        touched = 0
        for _, u, v in ops:
            touched = max(touched, min(pre[u], pre[v]))
        # validate=False: the batch was already checked (with overlay
        # semantics) by _validate_ops, so re-validating inside the
        # maintenance kernels would only double the charged reads.
        summary = self._maintainer.apply_batch(
            ops, algorithm=algorithm or self._insert_algorithm,
            validate=False)
        cores = self._maintainer.cores
        for _, u, v in ops:
            touched = max(touched, min(cores[u], cores[v]))
        for v in summary["changed_nodes"]:
            touched = max(touched, pre[v], cores[v])
        self._epoch = batch
        self._events_applied += len(ops)
        self._cache.invalidate(summary["changed_nodes"], touched)
        summary["epoch"] = self._epoch
        summary["max_core_touched"] = touched
        return summary

    def _normalize_event(self, event):
        try:
            op, u, v = event
        except (TypeError, ValueError):
            raise ReproError(
                "event must be a ('+'/'-', u, v) triple, got %r"
                % (event,)) from None
        if op not in ("+", "-"):
            raise ReproError(
                "event kind must be '+' or '-', got %r" % (op,))
        return op, int(u), int(v)

    def _validate_ops(self, ops):
        """Check a batch is applicable *before* it reaches the journal.

        Events within the batch interact (an insert may precede the
        deletion of the same edge), so applicability is simulated with
        an overlay on top of the current graph.  A batch that fails here
        is rejected wholesale -- nothing is journaled or applied.
        """
        graph = self.graph
        n = graph.num_nodes
        overlay = {}
        for op, u, v in ops:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(
                    "edge (%d, %d) out of range for n=%d" % (u, v, n))
            if u == v:
                raise GraphError("self loop (%d, %d) not allowed" % (u, v))
            key = (u, v) if u < v else (v, u)
            present = overlay.get(key)
            if present is None:
                present = graph.has_edge(u, v)
            if op == "+":
                if present:
                    raise EdgeExistsError(
                        "edge (%d, %d) already present" % (u, v))
            else:
                if not present:
                    raise EdgeNotFoundError(
                        "edge (%d, %d) not present" % (u, v))
            overlay[key] = op == "+"

    def _check_algorithm(self, algorithm):
        """Reject unknown insert algorithms *before* the batch is journaled.

        The maintainer would raise on its own -- but only mid-batch,
        after the journal append and possibly after earlier events
        mutated the index, leaving a half-applied batch the journal
        would still replay in full.
        """
        from repro.core.maintenance.maintainer import INSERT_ALGORITHMS

        if algorithm is not None and algorithm not in INSERT_ALGORITHMS:
            raise ValueError(
                "unknown insert algorithm %r (choose from %r)"
                % (algorithm, INSERT_ALGORITHMS))

    def _check_node(self, v):
        if not 0 <= v < self.graph.num_nodes:
            raise GraphError(
                "node %d out of range for n=%d" % (v, self.graph.num_nodes))
        return v

    @staticmethod
    def _check_k(k):
        if k < 0:
            raise ValueError("k must be non-negative")
        return k

    def __repr__(self):
        return ("CoreService(n=%d, epoch=%d, events=%d, queries=%d, "
                "cache_hit_rate=%.2f)"
                % (self.graph.num_nodes, self._epoch, self._events_applied,
                   self._queries_served, self._cache.stats.hit_rate))


def _fsync_path(path):
    """fsync a file (or directory) by path, so renames survive power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _compute_cnt_scan(graph, cores):
    """Eq. 2 counters for arbitrary seed algorithms, in one scan.

    SemiCore* hands its ``cnt`` array over directly; the other seeding
    algorithms only produce ``core[]``, so the counters are derived with
    a single sequential adjacency scan (I/O-counted like any scan).
    """
    from repro.core.locality import compute_cnt

    cnt = array("i", bytes(4 * graph.num_nodes))
    for v, nbrs in graph.iter_adjacency():
        cnt[v] = compute_cnt(cores, nbrs, cores[v])
    return cnt
