"""Write-ahead journal of edge update events.

:class:`CoreService` journals every accepted batch *before* applying it
to the maintained index, so a crash between the append and the in-memory
state transition loses nothing: on restart the tail of the journal is
replayed on top of the last checkpoint (``service/core_service.py``).

Durability model
----------------
* A record is 21 bytes: a kind byte, two 32-bit fields, the 64-bit id
  of the batch it belongs to, and a CRC32 of those fields.  Each
  :meth:`append` writes one *batch header* record (kind 2, carrying the
  event count) followed by the event records (kind 0 insert / 1
  delete), all in a single ``write`` + ``flush`` + ``fsync``.
* Batches are the unit of crash-atomicity.  A torn append -- a partial
  trailing record, or a batch header followed by fewer event records
  than it announces -- is the signature of a crash mid-append: the
  whole unacknowledged batch is silently discarded on open and
  overwritten by the next append.  Without the header, a torn write
  that happened to end on a record boundary would replay as a
  *truncated* batch, a state matching neither "applied" nor "lost".
* A complete record whose CRC does not match is treated as
  *corruption*, not an interrupted write, and replaying past it could
  desynchronize the index from the graph:
  :class:`~repro.errors.CorruptStorageError` is raised instead.  This
  is a deliberate trade-off: a filesystem that extends the file before
  the data blocks land could, after a crash, present a full-size
  garbage record that this policy refuses to auto-truncate -- but
  silently discarding CRC failures would also discard *actual*
  corruption, and the service's source of truth (graph tables +
  checkpoint) makes a rejected journal recoverable by reseeding,
  whereas replaying a wrong event is not.  An existing but empty
  journal file (crash between create and header write) is unambiguous
  and is re-initialized in place.

The journal counts none of its own bytes against the graph's
:class:`~repro.storage.blockio.IOStats`: it is service durability
plumbing, not part of the paper's external-memory cost model.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import CorruptStorageError

_MAGIC = b"RPRJRNL1"
_VERSION = 1
_FILE_HEADER = struct.Struct("<8sI4x")
_PAYLOAD = struct.Struct("<BIIQ")
_CRC = struct.Struct("<I")

RECORD_SIZE = _PAYLOAD.size + _CRC.size

#: Event kind byte <-> the public "+" / "-" operation codes.
_KIND_TO_OP = {0: "+", 1: "-"}
_OP_TO_KIND = {"+": 0, "-": 1}
#: Kind byte of the per-batch header record (u = event count, v unused).
_KIND_BATCH = 2


def _pack_record(kind, u, v, batch):
    payload = _PAYLOAD.pack(kind, u, v, batch)
    return payload + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)


class EventJournal:
    """Append-only journal of ``("+"|"-", u, v)`` events grouped in batches."""

    def __init__(self, path):
        """Open (or create) the journal at ``path``.

        Opening scans the existing records once: the event count is
        recovered, a torn trailing batch (partial record or incomplete
        batch) is truncated away, and a corrupt complete record raises
        :class:`~repro.errors.CorruptStorageError` immediately -- a
        journal that cannot be replayed must not be appended to.
        """
        self.path = os.fspath(path)
        # A 0-byte file is a crash between create and header write:
        # nothing was ever journaled, so re-initialize it.
        fresh = (not os.path.exists(self.path)
                 or os.path.getsize(self.path) == 0)
        self._handle = open(self.path, "w+b" if fresh else "r+b")
        if fresh:
            self._handle.write(_FILE_HEADER.pack(_MAGIC, _VERSION))
            self._sync()
            self._events = []
            self._append_pos = _FILE_HEADER.size
        else:
            self._events, self._append_pos = self._scan()

    # -- writing ------------------------------------------------------------
    def append(self, events, batch):
        """Durably append ``events`` as one crash-atomic batch.

        The header + event records hit the disk (``fsync``) before this
        returns; only then may the caller apply the batch to the index.
        """
        if self._handle.closed:
            raise CorruptStorageError("journal %s is closed" % self.path)
        events = list(events)
        if not events:
            return
        blob = _pack_record(_KIND_BATCH, len(events), 0, batch)
        blob += b"".join(_pack_record(_OP_TO_KIND[op], u, v, batch)
                         for op, u, v in events)
        self._handle.seek(self._append_pos)
        self._handle.write(blob)
        self._handle.truncate()
        self._sync()
        self._events.extend((batch, op, u, v) for op, u, v in events)
        self._append_pos += len(blob)

    # -- reading ------------------------------------------------------------
    @property
    def num_events(self):
        """Number of valid events currently journaled."""
        return len(self._events)

    def events(self, start=0):
        """The journaled ``(batch, op, u, v)`` tuples from index ``start``."""
        return list(self._events[start:])

    def batches(self, start=0):
        """Group :meth:`events` from ``start`` into ``(batch, events)`` runs.

        Events of one batch are contiguous by construction (one append
        per batch); the grouping keys on the stored batch id so a replay
        reproduces exactly the batch boundaries -- and therefore the
        epoch sequence -- of the original run.
        """
        groups = []
        for batch, op, u, v in self._events[start:]:
            if not groups or groups[-1][0] != batch:
                groups.append((batch, []))
            groups[-1][1].append((op, u, v))
        return groups

    # -- lifecycle ----------------------------------------------------------
    def close(self):
        """Close the backing file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- internals ----------------------------------------------------------
    def _sync(self):
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _read_record(self, index):
        """Next record as ``(kind, u, v, batch)``; None at a torn tail."""
        record = self._handle.read(RECORD_SIZE)
        if len(record) < RECORD_SIZE:
            return None
        payload, crc = record[:_PAYLOAD.size], record[_PAYLOAD.size:]
        if _CRC.unpack(crc)[0] != zlib.crc32(payload) & 0xFFFFFFFF:
            raise CorruptStorageError(
                "journal %s: record %d fails its checksum "
                "(corrupted tail)" % (self.path, index))
        return _PAYLOAD.unpack(payload)

    def _scan(self):
        self._handle.seek(0)
        header = self._handle.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise CorruptStorageError(
                "journal %s: header truncated" % self.path)
        magic, version = _FILE_HEADER.unpack(header)
        if magic != _MAGIC:
            raise CorruptStorageError(
                "journal %s: bad magic %r" % (self.path, magic))
        if version != _VERSION:
            raise CorruptStorageError(
                "journal %s: unsupported version %d" % (self.path, version))
        events = []
        position = _FILE_HEADER.size
        read = 0
        while True:
            head = self._read_record(read)
            if head is None:
                break
            read += 1
            kind, count, _, batch = head
            if kind != _KIND_BATCH:
                raise CorruptStorageError(
                    "journal %s: record %d is not a batch header "
                    "(kind %d)" % (self.path, read - 1, kind))
            batch_events = []
            complete = True
            for _ in range(count):
                record = self._read_record(read)
                if record is None:
                    complete = False
                    break
                read += 1
                event_kind, u, v, event_batch = record
                if event_kind not in _KIND_TO_OP or event_batch != batch:
                    raise CorruptStorageError(
                        "journal %s: record %d does not belong to "
                        "batch %d" % (self.path, read - 1, batch))
                batch_events.append((batch, _KIND_TO_OP[event_kind], u, v))
            if not complete:
                break
            events.extend(batch_events)
            position += RECORD_SIZE * (count + 1)
        # Anything past the last complete batch is a torn append of a
        # batch that was never acknowledged: drop it.
        if self._handle.seek(0, os.SEEK_END) != position:
            self._handle.seek(position)
            self._handle.truncate()
            self._sync()
        return events, position

    def __repr__(self):
        return "EventJournal(%r, events=%d)" % (self.path, self.num_events)
