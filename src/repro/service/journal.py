"""Segmented write-ahead journal of edge update events.

:class:`CoreService` journals every accepted batch *before* applying it
to the maintained index, so a crash between the append and the
in-memory state transition loses nothing: on restart the tail of the
journal is replayed on top of the last checkpoint
(``service/core_service.py``).

Segmentation
------------
The journal is a *directory* of segment files::

    journal.000001.log   sealed   events [0, 1024)
    journal.000002.log   sealed   events [1024, 1536)
    journal.000003.log   active   events [1536, ...)

Records append to the highest-numbered segment (the *active* one).
:meth:`rotate` seals the active segment by creating the next one --
sealing is purely logical: a segment is sealed iff a higher-numbered
segment exists, so there is no seal marker whose write could itself be
torn.  Rotation happens on every :meth:`CoreService.checkpoint` and
whenever the active segment reaches ``segment_events`` events.

Every segment header records the segment's *base offset*: the number of
events journaled before it across the whole history.  Offsets are
therefore global and survive :meth:`compact`, which unlinks sealed
segments whose events are all covered by the durable checkpoint --
the on-disk replay prefix stays bounded by the checkpoint interval
instead of growing with the lifetime of the service.  Event history is
*not* retained in memory: reads stream from the segment files
(:meth:`iter_events` / :meth:`iter_batches`), and only a fixed-size
retention window of the most recent events is kept for introspection
(:meth:`recent_events`).

A journal created by the v1 code (one ``journal.log`` file) is adopted
as segment 0 with base offset 0: appends continue into it until the
first rotation seals it, after which compaction retires it like any
other sealed segment.

Durability model
----------------
* A record is 21 bytes: a kind byte, two 32-bit fields, the 64-bit id
  of the batch it belongs to, and a CRC32 of those fields.  Each
  :meth:`append` writes one *batch header* record (kind 2, carrying the
  event count) followed by the event records (kind 0 insert / 1
  delete), all in a single ``write`` + ``flush`` + ``fsync``.
* Batches are the unit of crash-atomicity.  A torn append -- a partial
  trailing record, or a batch header followed by fewer event records
  than it announces -- is the signature of a crash mid-append: the
  whole unacknowledged batch is silently discarded on open and
  overwritten by the next append.  Only the *active* segment can
  legitimately have a torn tail; appends never touch sealed segments,
  so a short read there is corruption and refuses to open.
* A complete record whose CRC does not match is treated as
  *corruption*, not an interrupted write, and replaying past it could
  desynchronize the index from the graph:
  :class:`~repro.errors.CorruptStorageError` is raised instead.  This
  is a deliberate trade-off: a filesystem that extends the file before
  the data blocks land could, after a crash, present a full-size
  garbage record that this policy refuses to auto-truncate -- but
  silently discarding CRC failures would also discard *actual*
  corruption, and the service's source of truth (graph tables +
  checkpoint) makes a rejected journal recoverable by reseeding,
  whereas replaying a wrong event is not.  An existing but empty
  active segment (crash between create and header write) is
  unambiguous and is re-initialized in place.
* New segments are created via write-to-temp + ``fsync`` + atomic
  rename + directory ``fsync``: a segment file either exists with a
  complete header or not at all.  Compaction unlinks oldest-first, so
  a crash mid-compaction leaves a contiguous suffix of segments;
  fully-covered stragglers are retired by the next checkpoint.

The journal counts none of its own bytes against the graph's
:class:`~repro.storage.blockio.IOStats`: it is service durability
plumbing, not part of the paper's external-memory cost model.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from collections import deque

from repro.errors import CorruptStorageError

_LEGACY_MAGIC = b"RPRJRNL1"
_LEGACY_VERSION = 1
_LEGACY_HEADER = struct.Struct("<8sI4x")

_SEGMENT_MAGIC = b"RPRJRNL2"
_SEGMENT_VERSION = 2
#: magic, version, pad, sequence number, base event offset.
_SEGMENT_HEADER = struct.Struct("<8sI4xQQ")

_PAYLOAD = struct.Struct("<BIIQ")
_CRC = struct.Struct("<I")

RECORD_SIZE = _PAYLOAD.size + _CRC.size

#: The v1 single-file journal, adopted as segment 0 when present.
LEGACY_NAME = "journal.log"
#: 6 digits zero-padded, but sequences outlive the padding: match more.
_SEGMENT_RE = re.compile(r"^journal\.(\d{6,})\.log$")

#: Events an active segment may hold before an append auto-rotates it
#: (rotation also happens on every checkpoint).  ``None`` disables the
#: size trigger.
DEFAULT_SEGMENT_EVENTS = 4096

#: Most recent events kept in memory for introspection -- the journal
#: never holds its full history resident.
DEFAULT_RETENTION_EVENTS = 256

#: Event kind byte <-> the public "+" / "-" operation codes.
_KIND_TO_OP = {0: "+", 1: "-"}
_OP_TO_KIND = {"+": 0, "-": 1}
#: Kind byte of the per-batch header record (u = event count, v unused).
_KIND_BATCH = 2
#: Kind byte of a standalone quarantine marker: the named batch failed
#: maintenance after every retry and replay must skip its events (while
#: still accounting for them -- the batch consumed an epoch).
_KIND_QUARANTINE = 3


def segment_name(seq):
    """File name of segment ``seq`` (``journal.000017.log``)."""
    return "journal.%06d.log" % seq


def _pack_record(kind, u, v, batch):
    payload = _PAYLOAD.pack(kind, u, v, batch)
    return payload + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)


class _Segment:
    """Metadata of one live segment file."""

    __slots__ = ("path", "name", "seq", "base_events", "num_events",
                 "append_pos", "header_size", "legacy")

    def __init__(self, path, seq, base_events, *, legacy=False):
        self.path = path
        self.name = os.path.basename(path)
        self.seq = seq
        self.base_events = base_events
        self.num_events = 0
        self.header_size = (_LEGACY_HEADER.size if legacy
                            else _SEGMENT_HEADER.size)
        self.append_pos = self.header_size
        self.legacy = legacy

    @property
    def end_events(self):
        """Global offset one past this segment's last event."""
        return self.base_events + self.num_events

    def as_dict(self):
        """Manifest form: the per-segment event offsets."""
        return {"name": self.name, "seq": self.seq,
                "base_events": self.base_events,
                "events": self.num_events}


class EventJournal:
    """Append-only segmented journal of ``("+"|"-", u, v)`` batches."""

    def __init__(self, directory, *, segment_events=DEFAULT_SEGMENT_EVENTS,
                 retention_events=DEFAULT_RETENTION_EVENTS):
        """Open (or create) the journal living under ``directory``.

        Opening scans every live segment once, streaming: per-segment
        event counts are recovered and CRCs verified without
        materializing the history.  A torn trailing batch of the
        *active* segment is truncated away; any damage elsewhere raises
        :class:`~repro.errors.CorruptStorageError` immediately -- a
        journal that cannot be replayed must not be appended to.
        """
        if segment_events is not None and segment_events < 1:
            raise ValueError("segment_events must be positive or None")
        self.directory = os.fspath(directory)
        self.segment_events = segment_events
        self._retention = deque(maxlen=max(0, retention_events))
        self._closed = False
        self._handle = None
        self._quarantined = set()
        #: Data-file fsyncs issued (appends, segment creation, tail
        #: repair) -- the durability cost of ingest, surfaced by
        #: ``stats()`` and the metrics registry.
        self.fsyncs = 0
        self._segments = self._discover()
        if not self._segments:
            self._segments = [self._create_segment(1, 0)]
        previous = None
        for segment in self._segments:
            if segment.base_events is None:
                # 0-byte file, base unknown: legitimate only for the
                # active segment (crash between create and header
                # write); derive its base from the chain.
                if segment is not self._segments[-1]:
                    raise CorruptStorageError(
                        "journal segment %s: sealed segment is empty"
                        % segment.path,
                        path=segment.path, segment=segment.seq)
                segment.base_events = (previous.end_events
                                       if previous is not None else 0)
            self._scan_segment(segment)
            previous = segment
        self._open_active()

    # -- writing ------------------------------------------------------------
    def append(self, events, batch):
        """Durably append ``events`` as one crash-atomic batch.

        The header + event records hit the disk (``fsync``) before this
        returns; only then may the caller apply the batch to the index.
        Reaching ``segment_events`` rotates to a fresh segment
        afterwards.
        """
        if self._closed:
            raise CorruptStorageError(
                "journal under %s is closed" % self.directory,
                path=self.directory)
        events = list(events)
        if not events:
            return
        active = self._active
        blob = _pack_record(_KIND_BATCH, len(events), 0, batch)
        blob += b"".join(_pack_record(_OP_TO_KIND[op], u, v, batch)
                         for op, u, v in events)
        self._handle.seek(active.append_pos)
        self._handle.write(blob)
        self._handle.truncate()
        self._sync(self._handle)
        active.append_pos += len(blob)
        active.num_events += len(events)
        self._retention.extend((batch, op, u, v) for op, u, v in events)
        if (self.segment_events is not None
                and active.num_events >= self.segment_events):
            self.rotate()

    def append_quarantine(self, batch):
        """Durably mark ``batch`` as quarantined.

        Writes one standalone marker record (kind 3, no event body):
        the batch's event records stay journaled for forensics, but
        replay skips them while still counting them toward the epoch
        sequence.  The marker carries no events, so it never moves the
        event offsets and may legitimately land in a later segment than
        the batch it names (appends can rotate in between).
        """
        if self._closed:
            raise CorruptStorageError(
                "journal under %s is closed" % self.directory,
                path=self.directory)
        active = self._active
        blob = _pack_record(_KIND_QUARANTINE, 0, 0, batch)
        self._handle.seek(active.append_pos)
        self._handle.write(blob)
        self._handle.truncate()
        self._sync(self._handle)
        active.append_pos += len(blob)
        self._quarantined.add(batch)

    def quarantined_batches(self):
        """Sorted ids of batches marked quarantined (scan + this run)."""
        return sorted(self._quarantined)

    def is_quarantined(self, batch):
        """Whether ``batch`` carries a quarantine marker."""
        return batch in self._quarantined

    def rotate(self):
        """Seal the active segment by opening the next one.

        Sealing is logical -- the new segment's existence is what seals
        its predecessor -- so the only durability step is the atomic
        creation of the new file.  A no-op (returns False) when the
        active segment holds no events yet: repeated checkpoints must
        not pile up empty segments.
        """
        if self._closed:
            raise CorruptStorageError(
                "journal under %s is closed" % self.directory,
                path=self.directory)
        active = self._active
        if active.num_events == 0:
            return False
        # Create the successor and open its handle before touching the
        # active one: a failure anywhere (ENOSPC, EMFILE, ...) must
        # leave the journal exactly as it was, still able to append.
        segment = self._create_segment(active.seq + 1, active.end_events)
        try:
            handle = open(segment.path, "r+b")
        except BaseException:
            os.unlink(segment.path)
            raise
        self._handle.close()
        self._handle = handle
        self._segments.append(segment)
        return True

    def compact(self, events_covered):
        """Unlink sealed segments fully covered by ``events_covered``.

        ``events_covered`` is the checkpoint watermark: the global
        number of journaled events the durable checkpoint accounts for.
        The active segment is never removed; a sealed segment
        straddling the watermark survives.  Unlinks oldest-first so a
        crash mid-compaction leaves a contiguous segment suffix.
        Returns the removed file names.
        """
        removed = []
        while (len(self._segments) > 1
               and self._segments[0].end_events <= events_covered):
            segment = self._segments.pop(0)
            os.unlink(segment.path)
            removed.append(segment.name)
        if removed:
            fsync_path(self.directory)
        return removed

    # -- reading ------------------------------------------------------------
    @property
    def num_events(self):
        """Global number of events ever journaled (O(1))."""
        return self._segments[-1].end_events

    @property
    def first_retained_event(self):
        """Global offset of the oldest event still on disk."""
        return self._segments[0].base_events

    @property
    def num_segments(self):
        """Number of live segment files (sealed + active)."""
        return len(self._segments)

    @property
    def active_segment(self):
        """File name of the segment appends currently go to."""
        return self._active.name

    def segments(self):
        """Per-segment event offsets, oldest first (manifest form)."""
        return [segment.as_dict() for segment in self._segments]

    def stats(self):
        """One dict of journal gauges, for reports and debugging."""
        disk_bytes = 0
        for segment in self._segments:
            try:
                disk_bytes += os.path.getsize(segment.path)
            except OSError:
                pass
        return {
            "segments": len(self._segments),
            "active_segment": self._active.name,
            "total_events": self.num_events,
            "retained_events": self.num_events - self.first_retained_event,
            "first_retained_event": self.first_retained_event,
            "quarantined_batches": len(self._quarantined),
            "disk_bytes": disk_bytes,
            "fsyncs": self.fsyncs,
        }

    def recent_events(self):
        """The in-memory retention window of most recent events."""
        return list(self._retention)

    def iter_events(self, start=0, stop=None):
        """Stream ``(batch, op, u, v)`` for global indexes
        ``[start, stop)``.

        Reads from the segment files -- nothing is materialized.
        Whole batches before ``start`` are *skipped by seek*, not read,
        so positioning at a checkpoint watermark costs one batch-header
        read per skipped batch.
        """
        if stop is None:
            stop = self.num_events
        if start < self.first_retained_event:
            raise CorruptStorageError(
                "journal under %s: events before %d were compacted away "
                "(requested %d)"
                % (self.directory, self.first_retained_event, start),
                path=self.directory)
        for segment in self._segments:
            if segment.end_events <= start:
                continue
            if segment.base_events >= stop:
                break
            for event in self._iter_segment(segment, start, stop):
                yield event

    def iter_batches(self, start=0, *, include_quarantined=False):
        """Group :meth:`iter_events` into ``(batch, events)`` runs.

        Events of one batch are contiguous and within one segment by
        construction (one append per batch); the grouping keys on the
        stored batch id so a replay reproduces exactly the batch
        boundaries -- and therefore the epoch sequence -- of the
        original run.

        Quarantined batches are omitted by default.  With
        ``include_quarantined=True`` every batch is yielded as a
        3-tuple ``(batch, events, quarantined)`` so a replay can skip a
        quarantined batch's events while still advancing its epoch and
        event accounting.
        """
        current = None
        ops = []
        for batch, op, u, v in self.iter_events(start):
            if current is not None and batch != current:
                yield from self._emit_batch(current, ops,
                                            include_quarantined)
                ops = []
            current = batch
            ops.append((op, u, v))
        if current is not None:
            yield from self._emit_batch(current, ops, include_quarantined)

    def _emit_batch(self, batch, ops, include_quarantined):
        quarantined = batch in self._quarantined
        if include_quarantined:
            yield batch, ops, quarantined
        elif not quarantined:
            yield batch, ops

    def events(self, start=0):
        """The ``(batch, op, u, v)`` tuples from global index ``start``.

        Convenience list form of :meth:`iter_events`; prefer the
        iterator for anything that may be long.
        """
        return list(self.iter_events(start))

    def batches(self, start=0):
        """List form of :meth:`iter_batches`."""
        return list(self.iter_batches(start))

    # -- lifecycle ----------------------------------------------------------
    def close(self):
        """Close the active segment's backing file."""
        if not self._closed:
            self._closed = True
            if self._handle is not None and not self._handle.closed:
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- internals ----------------------------------------------------------
    @property
    def _active(self):
        return self._segments[-1]

    def _open_active(self):
        self._handle = open(self._active.path, "r+b")

    def _sync(self, handle):
        handle.flush()
        os.fsync(handle.fileno())
        self.fsyncs += 1

    def _discover(self):
        """Find live segments (and a legacy v1 file) under the dir."""
        if os.path.isfile(self.directory):
            raise CorruptStorageError(
                "EventJournal takes the journal *directory*, but %s is "
                "a file (the v1 API took the journal.log path)"
                % self.directory,
                path=self.directory)
        os.makedirs(self.directory, exist_ok=True)
        segments = []
        for name in os.listdir(self.directory):
            path = os.path.join(self.directory, name)
            match = _SEGMENT_RE.match(name)
            if match:
                segments.append((int(match.group(1)), path))
            elif (name.startswith("journal.") and name.endswith(".tmp")):
                # A segment creation that never reached its rename.
                os.unlink(path)
        segments.sort()
        found = []
        legacy_path = os.path.join(self.directory, LEGACY_NAME)
        if os.path.exists(legacy_path):
            found.append(_Segment(legacy_path, 0, 0, legacy=True))
        for seq, path in segments:
            base = self._read_segment_header(path, seq)
            found.append(_Segment(path, seq, base))
        return found

    def _read_segment_header(self, path, seq):
        """Validate a v2 segment header; returns its base offset.

        The header is written atomically with the file's creation, so a
        short or malformed header is corruption, never a crash window.
        Base-offset contiguity with the neighbouring segments is
        checked after each segment's scan, once its event count is
        known.
        """
        with open(path, "rb") as handle:
            header = handle.read(_SEGMENT_HEADER.size)
        if not header:
            # Base offset unknown until the segment chain is resolved.
            return None
        if len(header) != _SEGMENT_HEADER.size:
            raise CorruptStorageError(
                "journal segment %s: header truncated" % path,
                path=path, segment=seq, offset=0)
        magic, version, file_seq, base = _SEGMENT_HEADER.unpack(header)
        if magic != _SEGMENT_MAGIC:
            raise CorruptStorageError(
                "journal segment %s: bad magic %r" % (path, magic),
                path=path, segment=seq, offset=0)
        if version != _SEGMENT_VERSION:
            raise CorruptStorageError(
                "journal segment %s: unsupported version %d"
                % (path, version),
                path=path, segment=seq, offset=0)
        if file_seq != seq:
            raise CorruptStorageError(
                "journal segment %s: header claims sequence %d"
                % (path, file_seq),
                path=path, segment=seq, offset=0)
        return base

    def _create_segment(self, seq, base_events):
        """Atomically create segment ``seq`` starting at ``base_events``."""
        path = os.path.join(self.directory, segment_name(seq))
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(_SEGMENT_HEADER.pack(
                _SEGMENT_MAGIC, _SEGMENT_VERSION, seq, base_events))
            self._sync(handle)
        os.replace(tmp, path)
        fsync_path(self.directory)
        return _Segment(path, seq, base_events)

    def _scan_segment(self, segment):
        """Streaming scan: count events, verify CRCs, fix a torn tail.

        Only the active (last) segment may carry a torn trailing batch;
        it is truncated away.  The same state in a sealed segment --
        which appends never touch -- is corruption.
        """
        is_active = segment is self._segments[-1]
        # Only the active segment is ever repaired (tail truncation /
        # header re-init); sealed segments are read-only.
        with open(segment.path, "r+b" if is_active else "rb") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                # Crash between create and header write (only the v1
                # code could leave this; v2 creation is atomic).  For
                # the active segment nothing was ever journaled:
                # re-initialize in place.
                if not is_active:
                    raise CorruptStorageError(
                        "journal segment %s: sealed segment is empty"
                        % segment.path,
                        path=segment.path, segment=segment.seq)
                self._init_header(handle, segment)
                return
            handle.seek(0)
            header = handle.read(segment.header_size)
            if len(header) != segment.header_size:
                raise CorruptStorageError(
                    "journal %s: header truncated" % segment.path,
                    path=segment.path, segment=segment.seq, offset=0)
            if segment.legacy:
                magic, version = _LEGACY_HEADER.unpack(header)
                if magic != _LEGACY_MAGIC:
                    raise CorruptStorageError(
                        "journal %s: bad magic %r" % (segment.path, magic),
                        path=segment.path, segment=segment.seq, offset=0)
                if version != _LEGACY_VERSION:
                    raise CorruptStorageError(
                        "journal %s: unsupported version %d"
                        % (segment.path, version),
                        path=segment.path, segment=segment.seq, offset=0)
            position = segment.header_size
            read = 0
            events = 0
            while True:
                head = self._read_record(handle, segment, read)
                if head is None:
                    break
                read += 1
                kind, count, _, batch = head
                if kind == _KIND_QUARANTINE:
                    # Standalone marker: no event body, no offset moved.
                    self._quarantined.add(batch)
                    position += RECORD_SIZE
                    continue
                if kind != _KIND_BATCH:
                    raise CorruptStorageError(
                        "journal %s: record %d at byte offset %d is not "
                        "a batch header (kind %d)"
                        % (segment.path, read - 1,
                           self._record_offset(segment, read - 1), kind),
                        path=segment.path, segment=segment.seq,
                        offset=self._record_offset(segment, read - 1))
                complete = True
                batch_events = []
                for _ in range(count):
                    record = self._read_record(handle, segment, read)
                    if record is None:
                        complete = False
                        break
                    read += 1
                    event_kind, u, v, event_batch = record
                    if event_kind not in _KIND_TO_OP or \
                            event_batch != batch:
                        raise CorruptStorageError(
                            "journal %s: record %d at byte offset %d "
                            "does not belong to batch %d"
                            % (segment.path, read - 1,
                               self._record_offset(segment, read - 1),
                               batch),
                            path=segment.path, segment=segment.seq,
                            offset=self._record_offset(segment, read - 1))
                    batch_events.append(
                        (batch, _KIND_TO_OP[event_kind], u, v))
                if not complete:
                    break
                events += count
                self._retention.extend(batch_events)
                position += RECORD_SIZE * (count + 1)
            # Anything past the last complete batch is a torn append of
            # a batch that was never acknowledged: drop it -- but only
            # where appends can tear, i.e. in the active segment.
            if handle.seek(0, os.SEEK_END) != position:
                if not is_active:
                    raise CorruptStorageError(
                        "journal %s: sealed segment has a torn tail at "
                        "byte offset %d" % (segment.path, position),
                        path=segment.path, segment=segment.seq,
                        offset=position)
                handle.seek(position)
                handle.truncate()
                self._sync(handle)
            segment.num_events = events
            segment.append_pos = position
        successor = self._successor_of(segment)
        # A successor with base None is a 0-byte file whose base will
        # be *derived* from this segment's end -- contiguous by
        # construction, nothing to check yet.
        if successor is not None and successor.base_events is not None \
                and successor.base_events != segment.end_events:
            raise CorruptStorageError(
                "journal %s: segment ends at event %d but %s starts "
                "at %d" % (segment.path, segment.end_events,
                           successor.name, successor.base_events),
                path=segment.path, segment=segment.seq)

    def _successor_of(self, segment):
        index = self._segments.index(segment)
        if index + 1 < len(self._segments):
            return self._segments[index + 1]
        return None

    def _init_header(self, handle, segment):
        handle.seek(0)
        if segment.legacy:
            handle.write(_LEGACY_HEADER.pack(_LEGACY_MAGIC,
                                             _LEGACY_VERSION))
        else:
            handle.write(_SEGMENT_HEADER.pack(
                _SEGMENT_MAGIC, _SEGMENT_VERSION, segment.seq,
                segment.base_events))
        self._sync(handle)
        segment.num_events = 0
        segment.append_pos = segment.header_size

    @staticmethod
    def _record_offset(segment, index):
        """Byte offset of record ``index`` (records are fixed-size)."""
        return segment.header_size + RECORD_SIZE * index

    def _read_record(self, handle, segment, index):
        """Next record as ``(kind, u, v, batch)``; None at a torn tail."""
        record = handle.read(RECORD_SIZE)
        if len(record) < RECORD_SIZE:
            return None
        payload, crc = record[:_PAYLOAD.size], record[_PAYLOAD.size:]
        if _CRC.unpack(crc)[0] != zlib.crc32(payload) & 0xFFFFFFFF:
            raise CorruptStorageError(
                "journal %s: record %d at byte offset %d fails its "
                "checksum (corrupted tail)"
                % (segment.path, index,
                   self._record_offset(segment, index)),
                path=segment.path, segment=segment.seq,
                offset=self._record_offset(segment, index))
        return _PAYLOAD.unpack(payload)

    def _iter_segment(self, segment, start, stop):
        """Yield the segment's events overlapping ``[start, stop)``.

        Batches entirely before ``start`` are skipped with a seek of
        their announced size; the scan already proved every batch
        complete, so the arithmetic is safe.  Reads always use their
        own handle so an append never races an iterator's position.
        """
        handle = open(segment.path, "rb")
        try:
            handle.seek(segment.header_size)
            offset = segment.base_events
            read = 0
            while offset < min(stop, segment.end_events):
                head = self._read_record(handle, segment, read)
                if head is None:
                    break
                read += 1
                kind, count, _, batch = head
                if kind == _KIND_QUARANTINE:
                    continue
                if kind != _KIND_BATCH:
                    raise CorruptStorageError(
                        "journal %s: record %d at byte offset %d is not "
                        "a batch header (kind %d)"
                        % (segment.path, read - 1,
                           self._record_offset(segment, read - 1), kind),
                        path=segment.path, segment=segment.seq,
                        offset=self._record_offset(segment, read - 1))
                if offset + count <= start:
                    handle.seek(RECORD_SIZE * count, os.SEEK_CUR)
                    read += count
                    offset += count
                    continue
                for _ in range(count):
                    record = self._read_record(handle, segment, read)
                    if record is None:
                        raise CorruptStorageError(
                            "journal %s: batch %d truncated mid-read at "
                            "byte offset %d"
                            % (segment.path, batch,
                               self._record_offset(segment, read)),
                            path=segment.path, segment=segment.seq,
                            offset=self._record_offset(segment, read))
                    read += 1
                    event_kind, u, v, event_batch = record
                    if event_kind not in _KIND_TO_OP or \
                            event_batch != batch:
                        raise CorruptStorageError(
                            "journal %s: record %d at byte offset %d "
                            "does not belong to batch %d"
                            % (segment.path, read - 1,
                               self._record_offset(segment, read - 1),
                               batch),
                            path=segment.path, segment=segment.seq,
                            offset=self._record_offset(segment, read - 1))
                    if start <= offset < stop:
                        yield event_batch, _KIND_TO_OP[event_kind], u, v
                    offset += 1
        finally:
            handle.close()

    def __repr__(self):
        return ("EventJournal(%r, segments=%d, events=%d)"
                % (self.directory, len(self._segments), self.num_events))


def fsync_path(path):
    """fsync a file (or directory) by path, so creations and renames
    survive power loss.  Shared by the journal and the checkpoint
    writer (``service/core_service.py``)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
