"""Exception hierarchy for the repro package.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this library with a single handler while still
letting programming errors (TypeError, ...) propagate untouched.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """A storage-level operation failed (bad offsets, closed device, ...)."""


class CorruptStorageError(StorageError):
    """An on-disk table failed validation (bad magic, truncated data, ...)."""


class GraphError(ReproError):
    """An operation received a graph it cannot work with."""


class EdgeNotFoundError(GraphError):
    """An edge scheduled for deletion does not exist in the graph."""


class EdgeExistsError(GraphError):
    """An edge scheduled for insertion already exists in the graph."""
