"""Exception hierarchy for the repro package.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this library with a single handler while still
letting programming errors (TypeError, ...) propagate untouched.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StorageError(ReproError):
    """A storage-level operation failed (bad offsets, closed device, ...)."""


class CorruptStorageError(StorageError):
    """An on-disk table failed validation (bad magic, truncated data, ...).

    Carries the *location* of the damage as structured attributes so
    diagnostics, scrub reports and tests never have to parse the
    message: ``path`` (the damaged file), ``segment`` (journal segment
    sequence number, when the file is a journal segment) and ``offset``
    (byte offset of the damage within the file, when known).
    """

    def __init__(self, message, *, path=None, segment=None, offset=None):
        super().__init__(message)
        self.path = path
        self.segment = segment
        self.offset = offset


class ExecutorError(ReproError):
    """A shard executor lost a worker or timed out running a task."""


class ServiceDegradedError(ReproError):
    """The service refuses writes until its write plane is repaired."""


class BatchQuarantinedError(ReproError):
    """An update batch failed maintenance after every retry.

    The batch stays journaled with a quarantine marker -- it is skipped
    by restart replay, listed by ``stats()``, and never silently lost.
    ``batch`` is the journal batch id.
    """

    def __init__(self, message, *, batch=None):
        super().__init__(message)
        self.batch = batch


class GraphError(ReproError):
    """An operation received a graph it cannot work with."""


class EdgeNotFoundError(GraphError):
    """An edge scheduled for deletion does not exist in the graph."""


class EdgeExistsError(GraphError):
    """An edge scheduled for insertion already exists in the graph."""
