"""Package version, kept separate so tooling can read it cheaply."""

__version__ = "1.7.0"
