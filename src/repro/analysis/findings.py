"""The finding model shared by every checker.

A :class:`Finding` is one precise, machine-readable violation: file,
line, column, rule id, severity and a message that states the broken
*contract*, not just the syntax that tripped it.  Findings sort by
location so output is stable across checker execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, in increasing order of badness.  ``error`` findings
#: gate CI; ``warning`` findings are reported but carry no exit-code
#: weight on their own (the shipped configuration makes every rule an
#: error -- the distinction exists so deployments can soften a rule
#: without disabling it).
WARNING = "warning"
ERROR = "error"
SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str          #: file path, relative to the scanned root
    line: int          #: 1-based line of the offending node
    col: int           #: 0-based column of the offending node
    rule_id: str       #: e.g. ``"IO001"``
    severity: str      #: ``"error"`` or ``"warning"``
    message: str       #: the broken contract, in one sentence
    checker: str = ""  #: registered name of the producing checker

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                "severity must be one of %r, got %r"
                % (SEVERITIES, self.severity))

    @property
    def location(self):
        """``path:line:col`` -- the clickable anchor of the finding."""
        return "%s:%d:%d" % (self.path, self.line, self.col)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self):
        """JSON-friendly dict (the ``--format=json`` record shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "checker": self.checker,
        }

    def render(self):
        """The one-line text rendering: ``path:line:col: RULE message``."""
        return "%s: %s [%s] %s" % (self.location, self.severity,
                                   self.rule_id, self.message)


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa[RULE,...]`` comment occurrence."""

    path: str
    line: int
    rules: tuple = field(default_factory=tuple)  #: rule ids it names

    def covers(self, finding):
        """True when this comment silences ``finding``."""
        return (finding.path == self.path and finding.line == self.line
                and finding.rule_id in self.rules)
