"""The checker harness: sources, configuration, registry, and the run.

The moving parts, smallest first:

* :class:`SourceFile` -- one parsed module: path, text, AST, and the
  ``repro/...`` relpath every rule scopes on.
* :class:`Project` -- every source file under one package root, plus
  module-name lookup for the cross-module checkers (engine parity
  resolves kernels in *other* files than the one being visited).
* :class:`RuleConfig` / :class:`LintConfig` -- per-rule severity and
  options plus the contract tables (guarded attributes, inventories,
  scopes).  The shipped defaults live in
  :mod:`repro.analysis.contracts`; tests inject miniature tables.
* :class:`Checker` + :func:`register_checker` -- a checker declares the
  rules it owns and implements ``check(project, config)``; the registry
  is what ``repro lint`` runs and ``--list-rules`` prints.
* :func:`run_lint` -- parse, check, suppress, report.  Deterministic:
  findings are sorted by location, checkers run in registration order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis.findings import ERROR, Finding, SEVERITIES
from repro.analysis.suppressions import (
    apply_suppressions,
    collect_suppressions,
)
from repro.errors import ReproError


class SourceFile:
    """One parsed python source file of the scanned tree."""

    def __init__(self, path, relpath, text):
        self.path = path          #: absolute filesystem path
        self.relpath = relpath    #: posix path relative to the scan root
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        #: Dotted module name (``repro.core.semicore``) derived from the
        #: relpath; packages drop the ``__init__`` suffix.
        parts = relpath[:-3].split("/")
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        self.module = ".".join(parts)

    def __repr__(self):
        return "SourceFile(%r)" % self.relpath


class Project:
    """Every source file under one package root.

    ``root`` is the *package directory* (the one containing
    ``__init__.py``, e.g. ``.../src/repro``); relpaths are anchored at
    its parent so they read ``repro/service/core_service.py`` -- the
    form every contract table and scope pattern uses.
    """

    def __init__(self, root, files):
        self.root = root
        self.files = files
        self._by_module = {source.module: source for source in files}

    @classmethod
    def load(cls, root):
        """Parse every ``*.py`` under ``root`` (sorted, deterministic).

        A file that fails to parse is a hard error: the linter refuses
        to bless a tree it could not fully read.
        """
        root = os.path.abspath(os.fspath(root))
        if not os.path.isdir(root):
            raise ReproError("lint root %s is not a directory" % root)
        anchor = os.path.dirname(root)
        files = []
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames
                           if d != "__pycache__" and not d.startswith(".")]
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                relpath = os.path.relpath(path, anchor).replace(os.sep, "/")
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                try:
                    files.append(SourceFile(path, relpath, text))
                except SyntaxError as exc:
                    raise ReproError(
                        "cannot lint %s: %s" % (relpath, exc)) from exc
        return cls(root, files)

    def find_module(self, module):
        """The :class:`SourceFile` of a dotted module name, or None."""
        return self._by_module.get(module)

    def in_scope(self, source, prefixes):
        """True when ``source`` falls under any of the path ``prefixes``.

        A prefix ending in ``/`` matches a subtree, anything else an
        exact file -- ``("repro/core/", "repro/storage/csr.py")`` is the
        I/O-charging scope, for example.
        """
        for prefix in prefixes:
            if prefix.endswith("/"):
                if source.relpath.startswith(prefix):
                    return True
            elif source.relpath == prefix:
                return True
        return False


@dataclass
class RuleConfig:
    """Per-rule knobs: severity, enablement, free-form options."""

    severity: str = ERROR
    enabled: bool = True
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % (self.severity,))


@dataclass
class LintConfig:
    """The full linter configuration: rule table + contract tables.

    The contract tables are *data*, not code, so the fixture tests can
    swap in miniature worlds and deployments can extend the inventories
    without editing any checker.  ``rules`` maps rule id ->
    :class:`RuleConfig`; a missing entry means default (enabled,
    error).
    """

    rules: dict = field(default_factory=dict)
    #: Path scopes, see the individual checkers.
    io_scope: tuple = ()
    io_allowed_modules: tuple = ()
    determinism_scope: tuple = ()
    #: {relpath: {class: {attr: GuardSpec}}}
    guarded_attributes: dict = field(default_factory=dict)
    #: [(relpath, class, method, first_ctx, then_ctx, contract), ...]
    lock_orderings: tuple = ()
    #: [(module, function, algorithm-or-None), ...]
    engine_entry_points: tuple = ()
    #: Module whose ``_load_*`` loaders define the kernel registry.
    engine_registry_module: str = ""
    #: Allowed metric name literals (exact strings or ``%s`` templates).
    metric_names: frozenset = frozenset()
    #: Allowed span name literals.
    span_names: frozenset = frozenset()

    def rule(self, rule_id):
        """The (possibly defaulted) :class:`RuleConfig` of ``rule_id``."""
        return self.rules.get(rule_id) or RuleConfig()

    def make_finding(self, rule_id, source, node, message, checker):
        """A :class:`Finding` honoring the configured severity, or None
        when the rule is disabled."""
        rule = self.rule(rule_id)
        if not rule.enabled:
            return None
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(path=source.relpath, line=line, col=col,
                       rule_id=rule_id, severity=rule.severity,
                       message=message, checker=checker)


@dataclass(frozen=True)
class GuardSpec:
    """One guarded-by declaration: attribute writes need ``lock`` held.

    ``lock`` is the with-context expression as source text relative to
    the instance (``"self._swap_lock"``, ``"self._registry._lock"``).
    ``exempt_methods`` lists methods where unguarded writes are part of
    the protocol (``__init__`` is always exempt -- the object is not
    shared yet); ``reason`` documents why the exemption is sound.
    """

    lock: str
    exempt_methods: tuple = ()
    reason: str = ""


class Checker:
    """Base class: a named checker owning one or more rule ids."""

    #: Registered name (``"io-charging"``); set by subclasses.
    name = ""
    #: ``{rule_id: one-line contract description}``.
    rules = {}

    def check(self, project, config):
        """Yield :class:`Finding` objects for the whole project."""
        raise NotImplementedError

    def _emit(self, config, rule_id, source, node, message):
        """Severity/enablement-aware finding constructor (or None)."""
        return config.make_finding(rule_id, source, node, message,
                                   self.name)


_CHECKERS = {}


def register_checker(cls):
    """Class decorator adding a :class:`Checker` to the registry."""
    if not cls.name:
        raise ValueError("checker %r needs a name" % cls)
    for rule_id in cls.rules:
        owner = rule_owner(rule_id)
        if owner is not None and owner is not cls:
            raise ValueError("rule %s already owned by %s"
                             % (rule_id, owner.name))
    _CHECKERS[cls.name] = cls
    return cls


def checker_names():
    """Registered checker names, in registration order."""
    return list(_CHECKERS)


def get_checker(name):
    """The checker class registered under ``name``."""
    try:
        return _CHECKERS[name]
    except KeyError:
        raise ReproError(
            "unknown checker %r (registered: %s)"
            % (name, ", ".join(_CHECKERS))) from None


def rule_owner(rule_id):
    """The checker class owning ``rule_id`` (None when unclaimed)."""
    for cls in _CHECKERS.values():
        if rule_id in cls.rules:
            return cls
    return None


def all_rules():
    """``[(rule_id, description, checker_name), ...]`` sorted by id."""
    from repro.analysis.suppressions import (
        MALFORMED_RULE,
        SUPPRESSION_RULE,
    )

    rows = [
        (SUPPRESSION_RULE,
         "every inline suppression must silence a real finding",
         "suppressions"),
        (MALFORMED_RULE,
         "suppression markers must name explicit rule ids",
         "suppressions"),
    ]
    for name, cls in _CHECKERS.items():
        for rule_id, description in cls.rules.items():
            rows.append((rule_id, description, name))
    return sorted(rows)


@dataclass
class LintResult:
    """Everything one lint run produced, pre-sorted and summarizable."""

    findings: list          #: kept findings (suppressions applied)
    suppressed: list        #: findings silenced by a valid noqa
    suppressions: list      #: every suppression comment seen
    stats: dict

    @property
    def exit_code(self):
        """1 when any *error* finding survived, else 0.

        Unused/malformed suppressions are error findings themselves, so
        a stale noqa fails the gate exactly like a live violation.
        """
        return 1 if any(f.severity == ERROR for f in self.findings) else 0


def run_lint(root, config, checkers=None):
    """Run the suite over the package at ``root``.

    ``checkers`` narrows to a subset of registered names (default: all,
    in registration order).  Returns a :class:`LintResult`.
    """
    project = Project.load(root)
    findings = []
    names = list(checkers) if checkers is not None else checker_names()
    for name in names:
        checker = get_checker(name)()
        for finding in checker.check(project, config):
            if finding is not None:
                findings.append(finding)
    suppressions = []
    for source in project.files:
        found, malformed = collect_suppressions(source)
        suppressions.extend(found)
        findings.extend(malformed)
    kept, suppressed, unused = apply_suppressions(findings, suppressions)
    kept = sorted(kept + unused, key=Finding.sort_key)
    suppressed = sorted(suppressed, key=Finding.sort_key)
    stats = {
        "rules_run": len([rule for name in names
                          for rule in get_checker(name).rules]) + 2,
        "checkers_run": len(names),
        "files_scanned": len(project.files),
        "findings": len(kept),
        "errors": sum(1 for f in kept if f.severity == ERROR),
        "warnings": sum(1 for f in kept if f.severity != ERROR),
        "suppressions": len(suppressions),
        "suppressed_findings": len(suppressed),
        "unused_suppressions": len(unused),
    }
    return LintResult(findings=kept, suppressed=suppressed,
                      suppressions=suppressions, stats=stats)
