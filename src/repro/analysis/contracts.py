"""The shipped contract tables: what `repro lint` enforces on this repo.

Everything here is *data* consumed by :mod:`repro.analysis.checkers`.
The tables are the single place where the repo's cross-cutting
invariants are written down in machine-checkable form:

* which modules live inside the charged-I/O boundary,
* which attributes are guarded by which locks,
* the swap-then-invalidate publication ordering,
* the engine-aware entry points and the kernel registry behind them,
* the metric- and span-name inventories of the telemetry plane,
* which subtrees the determinism rules police.

Growing the system legitimately (a new metric, a new guarded field, a
new engine-aware algorithm) means extending a table here in the same PR
-- that is the point: the contract change is reviewed next to the code
change instead of drifting silently.
"""

from __future__ import annotations

from repro.analysis.framework import GuardSpec, LintConfig

# ---------------------------------------------------------------------------
# I/O charging (IO001).  Modules that implement or orchestrate the
# paper's algorithms must never open files themselves: every block read
# or write goes through BlockDevice / GraphStorage so IOStats stays an
# honest reproduction of the I/O model.  checkpoint/journal codecs live
# in repro.storage for exactly this reason.
# ---------------------------------------------------------------------------

IO_SCOPE = (
    "repro/core/",
    "repro/storage/csr.py",
)

# ---------------------------------------------------------------------------
# Lock discipline (LCK001/LCK002).  GuardSpec.lock is the with-context
# expression, as source text, that must be held around writes to the
# attribute.  __init__ is always exempt (the object is not yet shared).
# ---------------------------------------------------------------------------

GUARDED_ATTRIBUTES = {
    "repro/service/core_service.py": {
        "CoreService": {
            "_snapshot": GuardSpec("self._swap_lock"),
            "_epoch": GuardSpec("self._swap_lock"),
            "_events_applied": GuardSpec("self._swap_lock"),
            "_queries_served": GuardSpec("self._counter_lock"),
            "_snapshots_retired": GuardSpec("self._counter_lock"),
        },
    },
    "repro/service/snapshot.py": {
        "EpochSnapshot": {
            "_refs": GuardSpec("self._lock"),
            "_retired": GuardSpec("self._lock"),
            "_csr": GuardSpec(
                "self._lock", exempt_methods=("_drop",),
                reason="_drop runs exactly once, after the last "
                       "reference is gone; no reader can race it"),
            "_rows": GuardSpec(
                "self._lock", exempt_methods=("_drop",),
                reason="last-reference protocol, see _csr"),
            "_cores_np": GuardSpec("self._lock"),
        },
    },
    "repro/obs/registry.py": {
        "MetricsRegistry": {
            "_families": GuardSpec("self._lock"),
            "_order": GuardSpec("self._lock"),
        },
        "MetricFamily": {
            "_children": GuardSpec(
                "self._registry._lock",
                reason="children share the registry lock so one "
                       "collect() sees a consistent family"),
        },
        "Counter": {
            "_value": GuardSpec("self._lock"),
        },
        "Gauge": {
            "_value": GuardSpec("self._lock"),
        },
        "Histogram": {
            "_counts": GuardSpec("self._lock"),
            "_sum": GuardSpec("self._lock"),
            "_count": GuardSpec("self._lock"),
        },
    },
}

#: Publication ordering (LCK002): within the named method, the block
#: ``with <first>:`` must lexically precede the block ``with <then>:``.
#: CoreService._publish must swap the snapshot in before invalidating
#: the epoch-gated cache -- the other order lets a reader repopulate the
#: cache from the *old* snapshot after the invalidate.
LOCK_ORDERINGS = (
    ("repro/service/core_service.py", "CoreService", "_publish",
     "self._swap_lock", "self._cache.lock",
     "swap-then-invalidate: publish the new snapshot before dropping "
     "stale cache entries"),
)

# ---------------------------------------------------------------------------
# Engine parity (ENG001-ENG003).  Every public algorithm entry point
# accepts engine= and routes non-default engines through the registry;
# registered kernels mirror the reference signatures (minus engine=).
# ---------------------------------------------------------------------------

#: ``(module, function, registry algorithm key)``.
ENGINE_ENTRY_POINTS = (
    ("repro.core.semicore", "semi_core", "semicore"),
    ("repro.core.semicore_plus", "semi_core_plus", "semicore+"),
    ("repro.core.semicore_star", "semi_core_star", "semicore*"),
    ("repro.core.emcore", "em_core", "emcore"),
    ("repro.core.imcore", "im_core", "imcore"),
    ("repro.core.distributed", "distributed_core", "distributed"),
    ("repro.core.sharded", "sharded_semi_core_star", "shard-pass"),
    ("repro.core.maintenance.insert", "semi_insert", "insert"),
    ("repro.core.maintenance.insert_star", "semi_insert_star", "insert*"),
    ("repro.core.maintenance.delete_star", "semi_delete_star", "delete*"),
)

ENGINE_REGISTRY_MODULE = "repro.core.engines"

# ---------------------------------------------------------------------------
# Observability naming (OBS001-OBS003).  The declared inventories; a
# ``%s`` entry is a template whose literal left operand must match.
# ---------------------------------------------------------------------------

METRIC_NAMES = frozenset({
    # service plane (core_service.register_metrics)
    "repro_service_epoch",
    "repro_service_events_applied",
    "repro_service_queries_served",
    "repro_service_degraded",
    "repro_service_poisoned",
    "repro_service_quarantined_batches",
    "repro_service_events_quarantined",
    "repro_cache_%s",
    "repro_cache_hit_rate",
    "repro_cache_entries",
    "repro_snapshot_epoch",
    "repro_snapshot_pins",
    "repro_snapshots_retired",
    "repro_io_%s",
    "repro_journal_fsyncs",
    "repro_journal_events",
    "repro_journal_segments",
    "repro_journal_disk_bytes",
    "repro_apply_seconds",
    "repro_apply_total",
    "repro_apply_retries",
    # shard executor plane (core.sharded.register_executor_metrics)
    "repro_executor_respawns",
    "repro_executor_processes",
    "repro_executor_pool_forks",
    "repro_shm_bytes",
    # tracing plane (obs.trace)
    "repro_span_seconds",
})

SPAN_NAMES = frozenset({
    "decompose",
    "semicore.pass",
    "semicore_plus.pass",
    "semicore_star.pass",
    "emcore.partition",
    "emcore.round",
    "imcore.load",
    "imcore.peel",
    "sharded.round",
    "sharded.gather",
    "sharded.scatter",
    "service.apply",
    "service.validate",
    "service.journal_append",
    "service.checkpoint",
    "service.maintain",
    "service.snapshot_advance",
    "service.publish",
})

# ---------------------------------------------------------------------------
# Determinism (DET001/DET002).  Algorithm code must be a pure function
# of its inputs: monotonic timers for *reporting* elapsed time are fine,
# wall-clock reads, unseeded randomness and set-iteration order are not.
# ---------------------------------------------------------------------------

DETERMINISM_SCOPE = (
    "repro/core/",
)


def default_config():
    """The :class:`LintConfig` enforcing this repo's shipped contracts."""
    return LintConfig(
        io_scope=IO_SCOPE,
        determinism_scope=DETERMINISM_SCOPE,
        guarded_attributes=GUARDED_ATTRIBUTES,
        lock_orderings=LOCK_ORDERINGS,
        engine_entry_points=ENGINE_ENTRY_POINTS,
        engine_registry_module=ENGINE_REGISTRY_MODULE,
        metric_names=METRIC_NAMES,
        span_names=SPAN_NAMES,
    )
