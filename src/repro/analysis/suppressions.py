"""Inline suppressions: ``# repro: noqa[RULE]`` and their bookkeeping.

A suppression silences findings of the named rules *on its own line
only* -- blanket (ruleless) suppressions are deliberately not supported,
so every silenced contract is named and grep-able.  A suppression that
silences nothing is itself a finding (rule ``SUP001``): stale
suppressions would otherwise accumulate and quietly widen over
refactors, which is exactly the drift this suite exists to stop.
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO

from repro.analysis.findings import ERROR, Finding, Suppression

#: Matches ``repro: noqa[IO001]`` / ``repro: noqa[IO001, EXC002]``
#: comment markers (the leading hash is matched here, not written out,
#: so this file does not suppress anything itself).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)\]")

#: A malformed marker (bare ``noqa``, missing bracket, empty rule list)
#: -- matched so it can be *rejected* instead of silently ignored.
_NOQA_LIKE_RE = re.compile(r"#\s*repro:\s*noqa\b")

SUPPRESSION_RULE = "SUP001"
MALFORMED_RULE = "SUP002"


def collect_suppressions(source):
    """Parse one file's suppressions; returns ``(suppressions, findings)``.

    ``findings`` reports malformed markers (``SUP002``): a comment that
    clearly tries to be a repro-noqa but does not name rules in the
    required ``[RULE,...]`` form must fail loudly, or a typo would
    silently suppress nothing while the author believes it did.

    Comments are found with :mod:`tokenize` so a ``# repro: noqa[...]``
    inside a string literal is never treated as a suppression.
    """
    suppressions = []
    findings = []
    try:
        tokens = list(tokenize.generate_tokens(
            StringIO(source.text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match:
            rules = tuple(part.strip()
                          for part in match.group("rules").split(","))
            suppressions.append(Suppression(
                path=source.relpath, line=token.start[0], rules=rules))
        elif _NOQA_LIKE_RE.search(token.string):
            findings.append(Finding(
                path=source.relpath, line=token.start[0],
                col=token.start[1], rule_id=MALFORMED_RULE,
                severity=ERROR, checker="suppressions",
                message="malformed suppression %r: use "
                        "'# repro: noqa[RULE]' with explicit rule ids"
                        % token.string.strip()))
    return suppressions, findings


def apply_suppressions(findings, suppressions):
    """Split findings into (kept, suppressed) and flag unused markers.

    Returns ``(kept, suppressed, unused_findings)`` where
    ``unused_findings`` holds one ``SUP001`` finding per suppression (or
    per named rule of one) that silenced nothing.
    """
    kept = []
    suppressed = []
    used = {}  # (path, line) -> set of rule ids that fired
    for finding in findings:
        covering = [s for s in suppressions if s.covers(finding)]
        if covering:
            suppressed.append(finding)
            used.setdefault((finding.path, finding.line),
                            set()).add(finding.rule_id)
        else:
            kept.append(finding)
    unused = []
    for suppression in suppressions:
        fired = used.get((suppression.path, suppression.line), set())
        stale = sorted(set(suppression.rules) - fired)
        if stale:
            unused.append(Finding(
                path=suppression.path, line=suppression.line, col=0,
                rule_id=SUPPRESSION_RULE, severity=ERROR,
                checker="suppressions",
                message="unused suppression of %s: no such finding on "
                        "this line (drop the noqa or fix the rule id)"
                        % ", ".join(stale)))
    return kept, suppressed, unused
