"""Renderers for lint results: text, JSON, GitHub annotations, stats.

Each renderer is a pure function from a :class:`~repro.analysis.
framework.LintResult` to a string, so the CLI can print one format and
save another from the same run.
"""

from __future__ import annotations

import json


def render_text(result):
    """Human output: one finding per line plus a summary tail."""
    lines = [finding.render() for finding in result.findings]
    stats = result.stats
    summary = ("%d finding(s) (%d error, %d warning) in %d file(s); "
               "%d suppressed, %d unused suppression(s)"
               % (stats["findings"], stats["errors"], stats["warnings"],
                  stats["files_scanned"], stats["suppressed_findings"],
                  stats["unused_suppressions"]))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result):
    """Machine output: findings + stats as one stable JSON document."""
    payload = {
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [finding.as_dict() for finding in result.suppressed],
        "stats": dict(result.stats),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _github_escape(text):
    """Escape message data per the workflow-command grammar."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(result):
    """GitHub Actions workflow commands: inline PR annotations.

    ``::error file=...,line=...,col=...::message`` -- one command per
    finding, so a gated lint job paints violations straight onto the
    diff view.
    """
    lines = []
    for finding in result.findings:
        level = "error" if finding.severity == "error" else "warning"
        lines.append(
            "::%s file=%s,line=%d,col=%d,title=%s::%s"
            % (level, finding.path, finding.line, finding.col,
               finding.rule_id, _github_escape(finding.message)))
    if not lines:
        lines.append("::notice::repro lint: no findings")
    return "\n".join(lines)


def render_stats(result):
    """The ``--stats`` summary table (also the row exported to bench)."""
    stats = result.stats
    rows = (
        ("rules run", stats["rules_run"]),
        ("checkers run", stats["checkers_run"]),
        ("files scanned", stats["files_scanned"]),
        ("findings", stats["findings"]),
        ("  errors", stats["errors"]),
        ("  warnings", stats["warnings"]),
        ("suppressions", stats["suppressions"]),
        ("suppressed findings", stats["suppressed_findings"]),
        ("unused suppressions", stats["unused_suppressions"]),
    )
    width = max(len(label) for label, _ in rows)
    return "\n".join("%-*s  %d" % (width, label, value)
                     for label, value in rows)


def stats_figure(result):
    """The lint run as a figure record for ``collect_results.py``.

    Mirrors the shape the bench figures use: raw metrics carry a ``_``
    prefix inside each row so the collector lifts them into the
    flattened ``BENCH_RESULTS.json`` records.
    """
    stats = result.stats
    return {
        "figure": "lint",
        "scale": "repo",
        "rows": [{
            "suite": "repro-lint",
            "_rules_run": stats["rules_run"],
            "_files_scanned": stats["files_scanned"],
            "_findings": stats["findings"],
            "_errors": stats["errors"],
            "_warnings": stats["warnings"],
            "_suppressions": stats["suppressions"],
            "_unused_suppressions": stats["unused_suppressions"],
        }],
    }


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
