"""ENG001-ENG003: the engine registry stays the single dispatch path.

ENG001 -- every declared public entry point (``config.
engine_entry_points``) accepts a keyword-only ``engine=`` parameter and
routes through ``engine_implementation`` so callers can swap kernels
without touching the algorithm modules.

ENG002 -- registered kernel signatures mirror their reference
counterparts: for each algorithm key, the non-reference loader's kernel
must expose exactly the reference kernel's parameters minus ``engine``
(same names, same order, same keyword-onlyness, same default-ness).
Signature drift is how an engine silently stops being interchangeable.

ENG003 -- the registry's declared surface (the ``ENGINE_AWARE_*`` /
``ENGINE_KERNELS`` constants), the reference loader's keys, and the
entry-point table all name the same algorithm set; any drift means the
docs, the dispatch table, or this lint config went stale.

Everything is resolved purely from the AST -- the checker never imports
the checked code, so it runs identically with or without numpy.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker


def _find_function(tree, name):
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _param_shape(funcdef, drop=()):
    """The comparable shape of a signature: (kind, name, has_default).

    ``drop`` removes parameters (``engine``) before comparison.
    """
    args = funcdef.args
    shape = []
    pos_defaults = len(args.defaults)
    positional = list(args.posonlyargs) + list(args.args)
    for index, arg in enumerate(positional):
        has_default = index >= len(positional) - pos_defaults
        shape.append(("pos", arg.arg, has_default))
    if args.vararg is not None:
        shape.append(("*args", args.vararg.arg, False))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        shape.append(("kw", arg.arg, default is not None))
    if args.kwarg is not None:
        shape.append(("**kwargs", args.kwarg.arg, False))
    return [entry for entry in shape if entry[1] not in drop]


class _LoaderTable:
    """One ``_load_<engine>`` function parsed into {key: (module, fn)}."""

    def __init__(self, funcdef):
        self.funcdef = funcdef
        self.kernels = {}
        #: local name -> ("func", module, funcname) | ("module", module)
        imports = {}
        for node in ast.walk(funcdef):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = (node.module, alias.name)
        for node in ast.walk(funcdef):
            if not isinstance(node, ast.Return):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            for key_node, val in zip(value.keys, value.values):
                if not (isinstance(key_node, ast.Constant)
                        and isinstance(key_node.value, str)):
                    continue
                key = key_node.value
                if isinstance(val, ast.Name):
                    entry = imports.get(val.id)
                    if entry:
                        self.kernels[key] = (entry[0], entry[1])
                elif (isinstance(val, ast.Attribute)
                        and isinstance(val.value, ast.Name)):
                    entry = imports.get(val.value.id)
                    if entry:
                        # ``from pkg import submod`` + ``submod.fn``
                        self.kernels[key] = (
                            "%s.%s" % (entry[0], entry[1]), val.attr)


def _tuple_constant(tree, name):
    """The string elements of a module-level ``NAME = (...)`` constant."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    return [elt.value for elt in node.value.elts
                            if isinstance(elt, ast.Constant)], node
    return None, None


@register_checker
class EngineParityChecker(Checker):
    name = "engine-parity"
    rules = {
        "ENG001": "public algorithm entry points accept engine= and "
                  "route through repro.core.engines",
        "ENG002": "registered kernel signatures match their reference "
                  "counterparts (minus engine=)",
        "ENG003": "registry constants, the reference loader, and the "
                  "entry-point table declare the same algorithm set",
    }

    def check(self, project, config):
        if not config.engine_entry_points:
            return
        yield from self._check_entry_points(project, config)
        registry = project.find_module(config.engine_registry_module)
        if registry is None:
            return
        yield from self._check_signatures(project, config, registry)
        yield from self._check_surface(project, config, registry)

    # -- ENG001 ---------------------------------------------------------

    def _check_entry_points(self, project, config):
        for module, function, _algorithm in config.engine_entry_points:
            source = project.find_module(module)
            if source is None:
                continue
            funcdef = _find_function(source.tree, function)
            if funcdef is None:
                yield self._emit(
                    config, "ENG001", source, source.tree,
                    "declared entry point %s.%s() does not exist"
                    % (module, function))
                continue
            kwonly = {arg.arg for arg in funcdef.args.kwonlyargs}
            if "engine" not in kwonly:
                yield self._emit(
                    config, "ENG001", source, funcdef,
                    "%s() must accept a keyword-only engine= parameter"
                    % function)
            if not self._routes_through_registry(funcdef):
                yield self._emit(
                    config, "ENG001", source, funcdef,
                    "%s() accepts engine= but never resolves it via "
                    "engine_implementation(); non-default engines "
                    "would be silently ignored" % function)

    def _routes_through_registry(self, funcdef):
        for node in ast.walk(funcdef):
            if (isinstance(node, ast.Name)
                    and node.id == "engine_implementation"):
                return True
        return False

    # -- ENG002 ---------------------------------------------------------

    def _check_signatures(self, project, config, registry):
        loaders = {}
        for node in registry.tree.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name.startswith("_load_")):
                loaders[node.name] = _LoaderTable(node)
        reference = loaders.pop("_load_python", None)
        if reference is None:
            yield self._emit(
                config, "ENG002", registry, registry.tree,
                "registry module has no _load_python reference loader")
            return
        for loader_name, table in sorted(loaders.items()):
            for key in sorted(reference.kernels):
                if key not in table.kernels:
                    continue  # partial engines are legal
                ref_shape, ref_node = self._resolve(
                    project, reference.kernels[key], drop=("engine",))
                alt_shape, alt_node = self._resolve(
                    project, table.kernels[key], drop=())
                if ref_shape is None or alt_shape is None:
                    missing = (reference.kernels[key]
                               if ref_shape is None
                               else table.kernels[key])
                    yield self._emit(
                        config, "ENG002", registry, table.funcdef,
                        "cannot resolve kernel %s.%s() named by %s "
                        "for algorithm %r" % (missing[0], missing[1],
                                              loader_name, key))
                    continue
                if ref_shape != alt_shape:
                    yield self._emit(
                        config, "ENG002", registry, table.funcdef,
                        "algorithm %r: %s kernel %s() signature %s "
                        "differs from reference %s() minus engine= %s"
                        % (key, loader_name, alt_node.name,
                           _render_shape(alt_shape), ref_node.name,
                           _render_shape(ref_shape)))

    def _resolve(self, project, kernel, drop):
        module, funcname = kernel
        source = project.find_module(module)
        if source is None:
            return None, None
        funcdef = _find_function(source.tree, funcname)
        if funcdef is None:
            return None, None
        return _param_shape(funcdef, drop=drop), funcdef

    # -- ENG003 ---------------------------------------------------------

    def _check_surface(self, project, config, registry):
        declared = []
        anchor = registry.tree
        for constant in ("ENGINE_AWARE_ALGORITHMS", "ENGINE_KERNELS",
                         "ENGINE_AWARE_MAINTENANCE"):
            values, node = _tuple_constant(registry.tree, constant)
            if values is not None:
                declared.extend(values)
                anchor = node
        if not declared:
            return
        declared_set = set(declared)
        entry_keys = {algorithm for _m, _f, algorithm
                      in config.engine_entry_points}
        reference = None
        for node in registry.tree.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "_load_python"):
                reference = _LoaderTable(node)
        loader_keys = set(reference.kernels) if reference else set()
        for key in sorted(declared_set - entry_keys):
            yield self._emit(
                config, "ENG003", registry, anchor,
                "algorithm %r is declared in the registry constants "
                "but has no entry in the lint entry-point table; add "
                "it to ENGINE_ENTRY_POINTS in the same PR" % key)
        for key in sorted(entry_keys - declared_set):
            yield self._emit(
                config, "ENG003", registry, anchor,
                "entry-point table names algorithm %r which the "
                "registry constants do not declare" % key)
        for key in sorted(declared_set - loader_keys):
            yield self._emit(
                config, "ENG003", registry, anchor,
                "algorithm %r is declared but _load_python does not "
                "register a reference kernel for it" % key)


def _render_shape(shape):
    parts = []
    for kind, name, has_default in shape:
        text = name
        if kind == "kw":
            text = "*, " + text if not parts else text
        if has_default:
            text += "=..."
        parts.append(text)
    return "(" + ", ".join(parts) + ")"
