"""LCK001/LCK002: guarded-by attributes and publication ordering.

LCK001 enforces the guarded-by registry (``config.guarded_attributes``):
an attribute declared guarded by a lock may only be *written* inside a
lexical ``with <lock>:`` body.  ``__init__`` is always exempt (the
object is not yet shared), and a :class:`~repro.analysis.framework.
GuardSpec` can name further exempt methods whose protocol makes the
unguarded write sound (e.g. ``EpochSnapshot._drop`` runs strictly after
the last reference is released).  Reads are deliberately not checked:
the codebase's published-snapshot pattern makes racy reads of a
monotonic counter acceptable while racy writes never are.

LCK002 enforces statement *order* between two ``with`` blocks inside
one method (``config.lock_orderings``): ``CoreService._publish`` must
swap the snapshot in under ``_swap_lock`` before invalidating the
epoch-gated cache under ``_cache.lock``; the reverse order lets a
reader repopulate the cache from the outgoing snapshot.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker


def _expr_text(node):
    """Source text of an expression (``self._swap_lock``)."""
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover
        return "<unknown>"


def _written_self_attrs(stmt):
    """Names of ``self.<attr>`` targets written by one statement.

    Covers ``self.x = ...``, ``self.x += ...``, annotated assignment,
    and container writes through the attribute (``self.x[i] = ...`` /
    ``self.x[i] += 1``) -- the histogram-bucket pattern.
    """
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    attrs = []
    for target in targets:
        for leaf in _flatten_target(target):
            if isinstance(leaf, ast.Subscript):
                leaf = leaf.value
            if (isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"):
                attrs.append((leaf.attr, leaf))
    return attrs


def _flatten_target(target):
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


@register_checker
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    rules = {
        "LCK001": "writes to a guarded-by attribute must happen inside "
                  "'with <lock>:'",
        "LCK002": "publication methods must keep their declared "
                  "with-block order (swap before invalidate)",
    }

    def check(self, project, config):
        yield from self._check_guards(project, config)
        yield from self._check_orderings(project, config)

    # -- LCK001 ---------------------------------------------------------

    def _check_guards(self, project, config):
        for relpath, classes in sorted(config.guarded_attributes.items()):
            source = self._find(project, relpath)
            if source is None:
                continue
            for node in source.tree.body:
                if (isinstance(node, ast.ClassDef)
                        and node.name in classes):
                    yield from self._check_class(
                        source, config, node, classes[node.name])

    def _find(self, project, relpath):
        for source in project.files:
            if source.relpath == relpath:
                return source
        return None

    def _check_class(self, source, config, classdef, guards):
        for item in classdef.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_method(
                    source, config, classdef, item, guards)

    def _check_method(self, source, config, classdef, method, guards):
        if method.name == "__init__":
            return
        active = {attr: spec for attr, spec in guards.items()
                  if method.name not in spec.exempt_methods}
        if not active:
            return
        yield from self._walk(source, config, classdef, method,
                              method.body, active, held=frozenset())

    def _walk(self, source, config, classdef, method, body, guards, held):
        for stmt in body:
            for attr, node in _written_self_attrs(stmt):
                spec = guards.get(attr)
                if spec is not None and spec.lock not in held:
                    yield self._emit(
                        config, "LCK001", source, node,
                        "%s.%s is declared guarded by %s but is "
                        "written in %s() outside 'with %s:'"
                        % (classdef.name, attr, spec.lock,
                           method.name, spec.lock))
            if isinstance(stmt, ast.With):
                now_held = held | {
                    _expr_text(item.context_expr)
                    for item in stmt.items}
                yield from self._walk(source, config, classdef, method,
                                      stmt.body, guards, now_held)
            else:
                for child_body in _nested_bodies(stmt):
                    yield from self._walk(source, config, classdef,
                                          method, child_body, guards,
                                          held)

    # -- LCK002 ---------------------------------------------------------

    def _check_orderings(self, project, config):
        for entry in config.lock_orderings:
            relpath, cls, method_name, first, then, contract = entry
            source = self._find(project, relpath)
            if source is None:
                continue
            method = self._find_method(source, cls, method_name)
            if method is None:
                yield self._emit(
                    config, "LCK002", source, source.tree,
                    "ordering contract names %s.%s() but the method "
                    "does not exist" % (cls, method_name))
                continue
            first_line = self._first_with(method, first)
            then_line = self._first_with(method, then)
            if first_line is None or then_line is None:
                missing = first if first_line is None else then
                yield self._emit(
                    config, "LCK002", source, method,
                    "%s.%s() must contain 'with %s:' (%s)"
                    % (cls, method_name, missing, contract))
            elif first_line >= then_line:
                yield self._emit(
                    config, "LCK002", source, method,
                    "%s.%s(): 'with %s:' (line %d) must precede "
                    "'with %s:' (line %d) -- %s"
                    % (cls, method_name, first, first_line,
                       then, then_line, contract))

    def _find_method(self, source, cls, method_name):
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == cls:
                for item in node.body:
                    if (isinstance(item, ast.FunctionDef)
                            and item.name == method_name):
                        return item
        return None

    def _first_with(self, method, ctx_text):
        best = None
        for node in ast.walk(method):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                if _expr_text(item.context_expr) == ctx_text:
                    if best is None or node.lineno < best:
                        best = node.lineno
        return best


def _nested_bodies(stmt):
    """The statement bodies nested under one non-With statement."""
    for field in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field, None)
        if body and isinstance(body, list):
            if all(isinstance(item, ast.stmt) for item in body):
                yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body
