"""The domain checkers of `repro lint`.

Importing this package registers every shipped checker with the
framework registry (:mod:`repro.analysis.framework`); the import order
below is the execution and ``--list-rules`` presentation order.
"""

from __future__ import annotations

from repro.analysis.checkers.io_charging import IOChargingChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.engine_parity import EngineParityChecker
from repro.analysis.checkers.exceptions import ExceptionDisciplineChecker
from repro.analysis.checkers.obs_naming import ObsNamingChecker
from repro.analysis.checkers.determinism import DeterminismChecker

__all__ = [
    "IOChargingChecker",
    "LockDisciplineChecker",
    "EngineParityChecker",
    "ExceptionDisciplineChecker",
    "ObsNamingChecker",
    "DeterminismChecker",
]
