"""IO001: algorithm code must not bypass the charged-I/O boundary.

The paper's figures are statements about an I/O *model*: block reads
and writes are only meaningful if every one of them passes through
``BlockDevice`` / ``GraphStorage`` and lands in ``IOStats``.  A direct
``open()`` inside ``repro/core/`` would produce numbers that look
plausible and mean nothing.  This checker bans the raw file APIs --
builtin ``open``, the ``os``-module file calls, and ``pathlib`` --
inside the configured scope (``config.io_scope``).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker

#: ``os.`` functions that touch the filesystem.  Non-file os APIs
#: (``os.cpu_count``, ``os.environ``, ``os.getpid``...) stay legal.
_OS_FILE_APIS = frozenset({
    "open", "fdopen", "close", "read", "write", "pread", "pwrite",
    "lseek", "fsync", "fdatasync", "truncate", "ftruncate",
    "remove", "unlink", "rename", "replace", "link", "symlink",
    "mkdir", "makedirs", "rmdir", "removedirs", "listdir", "scandir",
    "walk", "stat", "lstat", "fstat", "utime", "chmod", "access",
})


@register_checker
class IOChargingChecker(Checker):
    name = "io-charging"
    rules = {
        "IO001": "modules inside the charged-I/O boundary must route "
                 "all file access through BlockDevice/GraphStorage",
    }

    def check(self, project, config):
        for source in project.files:
            if not project.in_scope(source, config.io_scope):
                continue
            yield from self._check_file(source, config)

    def _check_file(self, source, config):
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, config, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "pathlib":
                        yield self._emit(
                            config, "IO001", source, node,
                            "import of pathlib inside the charged-I/O "
                            "boundary; file access must go through the "
                            "storage layer so IOStats stays truthful")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "pathlib":
                    yield self._emit(
                        config, "IO001", source, node,
                        "import from pathlib inside the charged-I/O "
                        "boundary; file access must go through the "
                        "storage layer so IOStats stays truthful")

    def _check_call(self, source, config, node):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield self._emit(
                config, "IO001", source, node,
                "direct open() inside the charged-I/O boundary; this "
                "read/write would never be charged to IOStats -- route "
                "it through BlockDevice/GraphStorage")
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if (isinstance(owner, ast.Name) and owner.id == "io"
                    and func.attr == "open"):
                yield self._emit(
                    config, "IO001", source, node,
                    "io.open() inside the charged-I/O boundary; route "
                    "file access through the storage layer")
            elif (isinstance(owner, ast.Name) and owner.id == "os"
                    and func.attr in _OS_FILE_APIS):
                yield self._emit(
                    config, "IO001", source, node,
                    "os.%s() inside the charged-I/O boundary; "
                    "uncharged file access defeats the I/O model -- "
                    "route it through the storage layer" % func.attr)
            elif (isinstance(owner, ast.Attribute)
                    and isinstance(owner.value, ast.Name)
                    and owner.value.id == "os" and owner.attr == "path"
                    and func.attr in ("exists", "getsize", "isfile",
                                      "isdir")):
                yield self._emit(
                    config, "IO001", source, node,
                    "os.path.%s() inside the charged-I/O boundary; "
                    "existence/size probes belong to the storage "
                    "layer" % func.attr)
