"""EXC001/EXC002: no handler may silently swallow ``StorageError``.

The fault-injection plane (PR 7) works by raising typed
``StorageError`` subclasses at scheduled I/O operations and asserting
the service degrades the way the design says it should.  A bare
``except:`` (EXC001) or a broad ``except Exception/BaseException:``
that neither re-raises nor uses the bound exception (EXC002) would
absorb an injected fault and turn a red test green.

A broad handler is legal when it demonstrably propagates or inspects
the failure: it contains a ``raise``, or it binds the exception
(``as exc``) and actually references that name.  Cleanup-and-reraise
(``except BaseException: ...close(); raise``) and collect-and-rethrow
harnesses both pass; ``except Exception: pass`` does not.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker

_BROAD = ("Exception", "BaseException")


@register_checker
class ExceptionDisciplineChecker(Checker):
    name = "exception-discipline"
    rules = {
        "EXC001": "bare 'except:' swallows StorageError and defeats "
                  "fault injection",
        "EXC002": "broad 'except Exception/BaseException:' must "
                  "re-raise or use the bound exception",
    }

    def check(self, project, config):
        for source in project.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ExceptHandler):
                    finding = self._check_handler(source, config, node)
                    if finding is not None:
                        yield finding

    def _check_handler(self, source, config, handler):
        if handler.type is None:
            return self._emit(
                config, "EXC001", source, handler,
                "bare 'except:' catches everything including "
                "StorageError and KeyboardInterrupt; name the "
                "exception types this code can actually handle")
        broad = self._broad_name(handler.type)
        if broad is None:
            return None
        if self._reraises(handler) or self._uses_binding(handler):
            return None
        return self._emit(
            config, "EXC002", source, handler,
            "'except %s:' neither re-raises nor uses the caught "
            "exception; an injected StorageError would vanish here -- "
            "narrow the type, re-raise, or handle the bound exception"
            % broad)

    def _broad_name(self, type_node):
        """The broad class name caught by this handler, if any."""
        candidates = [type_node]
        if isinstance(type_node, ast.Tuple):
            candidates = list(type_node.elts)
        for node in candidates:
            if isinstance(node, ast.Name) and node.id in _BROAD:
                return node.id
        return None

    def _reraises(self, handler):
        return any(isinstance(node, ast.Raise)
                   for node in ast.walk(handler))

    def _uses_binding(self, handler):
        if handler.name is None:
            return False
        for node in ast.walk(handler):
            if (isinstance(node, ast.Name) and node.id == handler.name
                    and isinstance(node.ctx, ast.Load)):
                return True
        return False
