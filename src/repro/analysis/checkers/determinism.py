"""DET001/DET002: algorithm code is a pure function of its inputs.

The reproduction's cross-engine parity tests assert *bit-identical*
cores, traces, and iteration counts.  That only holds if nothing in an
algorithm pass depends on wall-clock time, ambient randomness, or hash
ordering:

DET001 -- no ``time.time()``/``time_ns()``, ``datetime.now()``-family
reads, unseeded ``random`` module calls (``random.Random(seed)`` is
fine, ``random.Random()`` and ``random.shuffle`` are not),
``os.urandom`` or ``uuid.uuid4`` inside the determinism scope.
Monotonic timers (``perf_counter``/``monotonic``) stay legal -- they
only *report* elapsed time, they never steer the computation.

DET002 -- no iteration over a ``set`` (literal, ``set()`` call,
comprehension, or a local assigned from one) inside the scope unless
the loop goes through ``sorted(...)``: set order is salted per process,
so a pass loop driven by it produces run-dependent traces.  Dicts are
insertion-ordered and deliberately exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker

#: Wall-clock / entropy calls per module.
_BANNED_MODULE_CALLS = {
    "time": ("time", "time_ns", "ctime", "localtime", "gmtime"),
    "datetime": ("now", "utcnow", "today"),
    "os": ("urandom",),
    "uuid": ("uuid1", "uuid4"),
}

#: ``random.<fn>`` draws from the *shared, unseeded* global generator.
_RANDOM_GLOBAL_FNS = (
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "random_bytes", "getrandbits",
)


def _is_set_expr(node):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return False


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    rules = {
        "DET001": "no wall-clock or ambient-entropy reads inside "
                  "algorithm code",
        "DET002": "no set-iteration-order dependence in algorithm "
                  "loops (sort first)",
    }

    def check(self, project, config):
        for source in project.files:
            if not project.in_scope(source, config.determinism_scope):
                continue
            modules = self._imported_modules(source.tree)
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call):
                    finding = self._check_call(source, config, node,
                                               modules)
                    if finding is not None:
                        yield finding
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    yield from self._check_set_loops(source, config,
                                                     node)

    def _imported_modules(self, tree):
        """{local alias: module} for plain ``import`` statements."""
        modules = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    modules[alias.asname or alias.name] = alias.name
        return modules

    # -- DET001 ---------------------------------------------------------

    def _check_call(self, source, config, node, modules):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        # datetime.datetime.now() -- unwrap the class attribute.
        if (isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and modules.get(owner.value.id) == "datetime"):
            owner = owner.value
        if not isinstance(owner, ast.Name):
            return None
        module = modules.get(owner.id)
        if module == "random":
            if func.attr in _RANDOM_GLOBAL_FNS:
                return self._emit(
                    config, "DET001", source, node,
                    "random.%s() draws from the unseeded global "
                    "generator; pass an explicit random.Random(seed) "
                    "instance instead" % func.attr)
            if func.attr == "Random" and not node.args:
                return self._emit(
                    config, "DET001", source, node,
                    "random.Random() without a seed is entropy-"
                    "dependent; construct it with an explicit seed")
            return None
        banned = _BANNED_MODULE_CALLS.get(module, ())
        if func.attr in banned:
            return self._emit(
                config, "DET001", source, node,
                "%s.%s() makes algorithm output depend on ambient "
                "state; results must be a pure function of the "
                "inputs (monotonic timers for *reporting* elapsed "
                "time are fine)" % (module, func.attr))
        return None

    # -- DET002 ---------------------------------------------------------

    def _check_set_loops(self, source, config, funcdef):
        set_locals = set()
        for node in funcdef.body:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign):
                    if _is_set_expr(stmt.value):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                set_locals.add(target.id)
        for node in ast.walk(funcdef):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iter_node = node.iter
            if _is_set_expr(iter_node):
                yield self._emit(
                    config, "DET002", source, node,
                    "loop iterates a set directly; set order is "
                    "salted per process -- iterate sorted(...) to "
                    "keep traces reproducible")
            elif (isinstance(iter_node, ast.Name)
                    and iter_node.id in set_locals):
                yield self._emit(
                    config, "DET002", source, node,
                    "loop iterates %r, a local bound to a set; set "
                    "order is salted per process -- iterate "
                    "sorted(%s) to keep traces reproducible"
                    % (iter_node.id, iter_node.id))
