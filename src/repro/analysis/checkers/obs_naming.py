"""OBS001-OBS003: telemetry names come from the declared inventory.

Dashboards and the CI exposition parser key on exact metric and span
names; a typo'd or ad-hoc name silently produces an orphan series.  So:
every literal name passed to ``counter()``/``gauge()``/``histogram()``
must be ``repro_``-prefixed and present in ``config.metric_names``
(OBS001); histogram names additionally carry an explicit unit suffix
(OBS002, ``_seconds``/``_bytes``); literal ``span("...")`` names come
from ``config.span_names`` (OBS003).

Dynamic names built from a template (``"repro_cache_%s" % field``) are
checked by their literal template text -- the template itself is the
inventory entry.  Calls whose first argument is not a literal (or a
literal template) are out of static reach and skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, register_checker

_METRIC_FACTORIES = ("counter", "gauge", "histogram")
_UNIT_SUFFIXES = ("_seconds", "_bytes")


def _callee_name(func):
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_name(node):
    """The literal (or literal-template) string of an argument node."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)):
        return node.left.value
    return None


@register_checker
class ObsNamingChecker(Checker):
    name = "obs-naming"
    rules = {
        "OBS001": "metric names are repro_-prefixed and drawn from the "
                  "declared inventory",
        "OBS002": "histogram names carry an explicit unit suffix "
                  "(_seconds/_bytes)",
        "OBS003": "span names are drawn from the declared inventory",
    }

    def check(self, project, config):
        for source in project.files:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                callee = _callee_name(node.func)
                if callee in _METRIC_FACTORIES:
                    yield from self._check_metric(
                        source, config, node, callee)
                elif callee == "span":
                    yield from self._check_span(source, config, node)

    def _check_metric(self, source, config, node, callee):
        name = _literal_name(node.args[0])
        if name is None:
            return
        if not name.startswith("repro_"):
            yield self._emit(
                config, "OBS001", source, node,
                "metric name %r must carry the repro_ namespace "
                "prefix" % name)
        elif config.metric_names and name not in config.metric_names:
            yield self._emit(
                config, "OBS001", source, node,
                "metric name %r is not in the declared inventory; add "
                "it to METRIC_NAMES (repro/analysis/contracts.py) in "
                "the same PR that introduces it" % name)
        if (callee == "histogram"
                and not name.endswith(_UNIT_SUFFIXES)):
            yield self._emit(
                config, "OBS002", source, node,
                "histogram %r needs an explicit unit suffix (%s) so "
                "dashboards can label axes"
                % (name, "/".join(_UNIT_SUFFIXES)))

    def _check_span(self, source, config, node):
        name = _literal_name(node.args[0])
        if name is None or not config.span_names:
            return
        if name not in config.span_names:
            yield self._emit(
                config, "OBS003", source, node,
                "span name %r is not in the declared inventory; add "
                "it to SPAN_NAMES (repro/analysis/contracts.py) in "
                "the same PR that introduces it" % name)
