"""Static analysis for the repro codebase: `repro lint`.

The package enforces, on every PR, the cross-cutting contracts the
reproduction's correctness rests on -- the charged-I/O boundary, lock
discipline and publication ordering, engine parity, exception
discipline around fault injection, telemetry naming, and algorithm
determinism.  See ``docs/ARCHITECTURE.md`` §8 for the rule table.

Typical use::

    from repro.analysis import default_config, run_lint
    result = run_lint(package_root(), default_config())
    print(render_text(result))

Importing :mod:`repro.analysis` registers the shipped checkers.
"""

from __future__ import annotations

import os

from repro.analysis.findings import ERROR, Finding, Suppression, WARNING
from repro.analysis.framework import (
    Checker,
    GuardSpec,
    LintConfig,
    LintResult,
    Project,
    RuleConfig,
    SourceFile,
    all_rules,
    checker_names,
    get_checker,
    register_checker,
    run_lint,
)
from repro.analysis import checkers as _checkers  # noqa: F401 - registers
from repro.analysis.contracts import default_config
from repro.analysis.output import (
    RENDERERS,
    render_github,
    render_json,
    render_stats,
    render_text,
    stats_figure,
)
from repro.analysis.suppressions import (
    MALFORMED_RULE,
    SUPPRESSION_RULE,
    apply_suppressions,
    collect_suppressions,
)


def package_root():
    """The installed ``repro`` package directory -- the default lint root."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


__all__ = [
    "Checker",
    "ERROR",
    "Finding",
    "GuardSpec",
    "LintConfig",
    "LintResult",
    "MALFORMED_RULE",
    "Project",
    "RENDERERS",
    "RuleConfig",
    "SUPPRESSION_RULE",
    "SourceFile",
    "Suppression",
    "WARNING",
    "all_rules",
    "apply_suppressions",
    "checker_names",
    "collect_suppressions",
    "default_config",
    "get_checker",
    "package_root",
    "register_checker",
    "render_github",
    "render_json",
    "render_stats",
    "render_text",
    "run_lint",
    "stats_figure",
]
